"""N-dimensional lookup tables with multilinear interpolation.

The paper stores the characterized current sources ``Io(V)`` / ``I_N(V)`` and
the parasitic capacitances as 4-D lookup tables over the node voltages.  This
module provides that data structure: an :class:`NDTable` over a list of
:class:`~repro.lut.grid.Axis` objects, evaluated with multilinear
interpolation and clamped extrapolation (the standard behaviour of
liberty-style characterization tables).

Interpolation is backed by a per-table corner-index cache: the ``2**N``
hypercube corner offsets into the flattened value array are enumerated once
per table, so neither the scalar :meth:`NDTable.evaluate` nor the batched
:meth:`NDTable.evaluate_batch` re-enumerates corners per query.  The batch
entry point takes an ``(M, ndim)`` coordinate array and brackets every axis
with one vectorized ``np.searchsorted``, which is what the waveform
integrator in :mod:`repro.csm.simulate` builds on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TableError
from .grid import Axis

__all__ = [
    "NDTable",
    "tabulate",
    "contract_leading_shared",
    "contract_leading_spans",
]


class NDTable:
    """A dense N-dimensional table ``f(x_1, ..., x_N)``.

    Parameters
    ----------
    axes:
        Ordered axis definitions; the length of each axis must match the
        corresponding dimension of ``values``.
    values:
        N-dimensional array of samples.
    name:
        Optional label for error messages and reports.
    """

    __slots__ = (
        "axes",
        "values",
        "name",
        "_axis_arrays",
        "_flat_values",
        "_corner_bits",
        "_corner_offsets",
        "_strides",
    )

    def __init__(self, axes: Sequence[Axis], values: np.ndarray, name: str = ""):
        values = np.ascontiguousarray(values, dtype=float)
        if len(axes) == 0:
            raise TableError("a table needs at least one axis")
        if values.ndim != len(axes):
            raise TableError(
                f"table {name!r}: value array has {values.ndim} dimensions "
                f"but {len(axes)} axes were given"
            )
        for dim, axis in enumerate(axes):
            if values.shape[dim] != len(axis):
                raise TableError(
                    f"table {name!r}: axis {axis.name!r} has {len(axis)} points "
                    f"but values dimension {dim} has size {values.shape[dim]}"
                )
        if not np.all(np.isfinite(values)):
            raise TableError(f"table {name!r}: values contain NaN or infinity")
        self.axes = tuple(axes)
        self.values = values
        self.name = name

        # Per-table interpolation cache: the 2**N hypercube corner patterns
        # and their flat offsets into the (row-major) value array, enumerated
        # once here instead of per evaluation.
        ndim = len(self.axes)
        self._axis_arrays = tuple(axis.as_array() for axis in self.axes)
        self._strides = np.array(values.strides, dtype=np.intp) // values.itemsize
        self._flat_values = values.reshape(-1)
        self._corner_bits = np.array(
            list(itertools.product((0, 1), repeat=ndim)), dtype=np.intp
        )
        self._corner_offsets = self._corner_bits @ self._strides

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.axes)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def __repr__(self) -> str:
        dims = " x ".join(f"{axis.name}[{len(axis)}]" for axis in self.axes)
        return f"<NDTable {self.name!r}: {dims}>"

    # ------------------------------------------------------------------
    def evaluate(self, *coordinates: float) -> float:
        """Multilinear interpolation at the given coordinates (positional).

        Uses the precompiled corner-offset cache: the hypercube corner values
        are gathered with one flat fancy index and combined with the corner
        weights, instead of looping over an ``itertools.product`` per call.
        """
        if len(coordinates) != self.ndim:
            raise TableError(
                f"table {self.name!r} expects {self.ndim} coordinates, got {len(coordinates)}"
            )
        base = 0
        fractions = np.empty(self.ndim)
        for dim, (axis, value) in enumerate(zip(self.axes, coordinates)):
            low_index, fraction = axis.bracket(value)
            base += low_index * self._strides[dim]
            fractions[dim] = fraction
        weights = np.where(self._corner_bits, fractions, 1.0 - fractions).prod(axis=1)
        corners = self._flat_values[base + self._corner_offsets]
        return float(weights @ corners)

    def evaluate_batch(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized multilinear interpolation over many coordinate tuples.

        Parameters
        ----------
        coords:
            ``(M, ndim)`` array of query points (an ``(M,)`` array is accepted
            for one-dimensional tables).  Queries outside the axis ranges are
            clamped to the edges, exactly like :meth:`evaluate`.

        Returns
        -------
        ``(M,)`` array of interpolants, matching :meth:`evaluate` pointwise.
        """
        coords = np.asarray(coords, dtype=float)
        if coords.ndim == 1 and self.ndim == 1:
            coords = coords[:, None]
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise TableError(
                f"table {self.name!r} expects an (M, {self.ndim}) coordinate array, "
                f"got shape {coords.shape}"
            )
        num_queries = coords.shape[0]
        base = np.zeros(num_queries, dtype=np.intp)
        fractions = np.empty((num_queries, self.ndim))
        for dim, points in enumerate(self._axis_arrays):
            clamped = np.clip(coords[:, dim], points[0], points[-1])
            low = np.searchsorted(points, clamped, side="right") - 1
            np.clip(low, 0, len(points) - 2, out=low)
            span = points[low + 1] - points[low]
            fractions[:, dim] = (clamped - points[low]) / span
            base += low * self._strides[dim]
        # (M, 2**N) corner weights: product over dimensions of frac / 1-frac.
        weights = np.where(
            self._corner_bits[None, :, :], fractions[:, None, :], 1.0 - fractions[:, None, :]
        ).prod(axis=2)
        corners = self._flat_values[base[:, None] + self._corner_offsets[None, :]]
        return np.einsum("mc,mc->m", weights, corners)

    def contract_leading(self, coords: np.ndarray) -> np.ndarray:
        """Interpolate the leading axes away at per-row coordinates.

        ``coords`` is a ``(K, L)`` array with ``1 <= L < ndim``.  For each row
        ``k`` the first ``L`` axes are multilinearly interpolated (with the
        usual clamped extrapolation) at ``coords[k]``, leaving a reduced table
        over the remaining axes.  Returns shape ``(K, *shape[L:])``.

        The CSM integrator uses this to contract the input-pin axes of the
        ``Io``/``I_N`` tables for every time step in one vectorized pass,
        leaving only the recurrent state axes for the sequential loop.
        """
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2:
            raise TableError("contract_leading expects a (K, L) coordinate array")
        num_contracted = coords.shape[1]
        if not 1 <= num_contracted < self.ndim:
            raise TableError(
                f"table {self.name!r}: cannot contract {num_contracted} of "
                f"{self.ndim} axes (need 1 <= L < ndim)"
            )
        lows, fracs, rows = self._contract_weights(coords)
        return self._contract_apply(lows, fracs, rows)

    def __call__(self, *coordinates: float) -> float:
        return self.evaluate(*coordinates)

    def _contract_weights(
        self, coords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bracket indices and weights for :meth:`contract_leading` queries."""
        num_rows, num_contracted = coords.shape
        lows = np.empty((num_rows, num_contracted), dtype=np.intp)
        fracs = np.empty((num_rows, num_contracted))
        for dim in range(num_contracted):
            points = self._axis_arrays[dim]
            clamped = np.clip(coords[:, dim], points[0], points[-1])
            low = np.searchsorted(points, clamped, side="right") - 1
            np.clip(low, 0, len(points) - 2, out=low)
            fracs[:, dim] = (clamped - points[low]) / (points[low + 1] - points[low])
            lows[:, dim] = low
        return lows, fracs, np.arange(num_rows)

    def _contract_apply(
        self, lows: np.ndarray, fracs: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Apply precomputed bracket weights (see :meth:`_contract_weights`).

        The ``2**L`` corner blocks (each ``(rows, *tail)``) are gathered
        directly from a block-flattened view and combined axis by axis with
        the same weight arithmetic, in the same order, as a sequential
        one-axis-at-a-time reduction — bitwise the same result, without
        materializing the ``(rows, axis_len, *tail)`` intermediate of the
        first contracted axis (whose off-bracket elements the later axes
        would discard anyway).
        """
        num_rows, num_contracted = lows.shape
        shape = self.values.shape
        tail_shape = shape[num_contracted:]
        tail_ones = (1,) * len(tail_shape)
        strides = [1] * num_contracted
        for dim in range(num_contracted - 2, -1, -1):
            strides[dim] = strides[dim + 1] * shape[dim + 1]
        blocks = self.values.reshape((-1,) + tail_shape)
        base = lows[:, 0] * strides[0]
        for dim in range(1, num_contracted):
            base = base + lows[:, dim] * strides[dim]
        partial = {
            bits: blocks[base + sum(b * s for b, s in zip(bits, strides))]
            for bits in itertools.product((0, 1), repeat=num_contracted)
        }
        for dim in range(num_contracted):
            high_weight = fracs[:, dim].reshape((num_rows,) + tail_ones)
            low_weight = 1.0 - high_weight
            partial = {
                rest: partial[(0,) + rest] * low_weight + partial[(1,) + rest] * high_weight
                for rest in itertools.product((0, 1), repeat=num_contracted - dim - 1)
            }
        return partial[()]

    def evaluate_dict(self, coordinates: Mapping[str, float]) -> float:
        """Interpolate using axis names as keys."""
        try:
            ordered = [coordinates[name] for name in self.axis_names]
        except KeyError as exc:
            raise TableError(
                f"table {self.name!r} requires coordinates {self.axis_names}, "
                f"got {tuple(coordinates)}"
            ) from exc
        return self.evaluate(*ordered)

    def gradient(
        self, *coordinates: float, step: Optional[float] = None
    ) -> Tuple[float, ...]:
        """Central-difference gradient with respect to each coordinate.

        By default the finite-difference step is chosen *per dimension* as a
        small fraction (1e-3) of that axis's span, so tables whose axes live
        at very different scales (volts next to picoseconds or femtofarads)
        are all probed at a sensible resolution.  Pass ``step`` to force one
        explicit step size for every dimension instead.
        """
        grads = []
        for dim, axis in enumerate(self.axes):
            dim_step = step if step is not None else 1e-3 * (axis.upper - axis.lower)
            forward = list(coordinates)
            backward = list(coordinates)
            forward[dim] += dim_step
            backward[dim] -= dim_step
            grads.append((self.evaluate(*forward) - self.evaluate(*backward)) / (2 * dim_step))
        return tuple(grads)

    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "NDTable":
        return NDTable(self.axes, self.values * factor, name=self.name)

    def shifted(self, offset: float) -> "NDTable":
        return NDTable(self.axes, self.values + offset, name=self.name)

    def minimum(self) -> float:
        return float(self.values.min())

    def maximum(self) -> float:
        return float(self.values.max())

    def mean(self) -> float:
        return float(self.values.mean())

    def reduce_mean(self) -> float:
        """Collapse the whole table to its average value.

        The paper stores an *average* capacitance over the characterization
        ramp slopes; this helper provides that reduction.
        """
        return self.mean()

    def slice(self, axis_name: str, value: float) -> "NDTable":
        """Fix one axis at ``value`` (nearest-neighbour) and drop it."""
        if self.ndim == 1:
            raise TableError("cannot slice a one-dimensional table")
        if axis_name not in self.axis_names:
            raise TableError(f"table {self.name!r} has no axis {axis_name!r}")
        dim = self.axis_names.index(axis_name)
        axis = self.axes[dim]
        nearest = int(np.argmin(np.abs(axis.as_array() - value)))
        taken = np.take(self.values, nearest, axis=dim)
        remaining = tuple(a for i, a in enumerate(self.axes) if i != dim)
        return NDTable(remaining, taken, name=f"{self.name}[{axis_name}={axis.points[nearest]:g}]")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable representation (used by :mod:`repro.lut.io`)."""
        return {
            "name": self.name,
            "axes": [{"name": a.name, "points": list(a.points)} for a in self.axes],
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "NDTable":
        axes = [Axis(name=a["name"], points=tuple(a["points"])) for a in data["axes"]]
        return cls(axes, np.asarray(data["values"], dtype=float), name=data.get("name", ""))


def contract_leading_shared(
    tables: Sequence[NDTable], coords: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """:meth:`NDTable.contract_leading` over several same-axes tables.

    The bracket indices and interpolation weights of the contracted axes are
    computed once and applied to every table, which is how the model
    integrator contracts its ``Io``/``I_N`` pair (identical axes, identical
    per-step query points) without paying for the bracketing twice.  All
    tables must share the leading (contracted) axes of the first table.
    """
    if not tables:
        return ()
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2:
        raise TableError("contract_leading_shared expects a (K, L) coordinate array")
    first = tables[0]
    num_contracted = coords.shape[1]
    if not 1 <= num_contracted < first.ndim:
        raise TableError(
            f"table {first.name!r}: cannot contract {num_contracted} of "
            f"{first.ndim} axes (need 1 <= L < ndim)"
        )
    leading = first.axes[:num_contracted]
    for table in tables[1:]:
        if table.ndim != first.ndim or table.axes[:num_contracted] != leading:
            raise TableError(
                "contract_leading_shared requires identical leading axes "
                f"({first.name!r} vs {table.name!r})"
            )
    lows, fracs, rows = first._contract_weights(coords)
    return tuple(table._contract_apply(lows, fracs, rows) for table in tables)


def contract_leading_spans(
    table_groups: Sequence[Tuple[NDTable, ...]],
    coords: np.ndarray,
    spans: Sequence[Tuple[int, int]],
    chunk: Optional[int] = None,
) -> Tuple[np.ndarray, ...]:
    """Shared-bracket :meth:`NDTable.contract_leading` over span-partitioned rows.

    ``coords`` is one ``(K, L)`` query array partitioned into contiguous row
    spans: rows ``spans[g] = (start, stop)`` belong to table group
    ``table_groups[g]`` (a tuple of one or more tables, same arity for every
    group).  All tables of all groups must share value-equal leading axes and
    per-position value shapes, so the bracket indices and weights of a chunk
    of rows are computed *once* (from the first table) and applied to each
    span's own tables.  This is how the MMMC precompute folds the corner
    dimension into one contraction pass: corners of the same cell have
    distinct (corner-scaled) value grids but identical axes, so their lookup
    rows batch through one vectorized bracketing.

    ``chunk`` bounds the per-step temporaries (``None`` processes all rows at
    once).  Chunk boundaries do not affect the result — every operation is
    per-row — and each row's output is bitwise identical to
    ``group[pos].contract_leading(coords[start:stop])``.

    Returns one ``(K, *tail)`` array per table *position* (e.g. the fused
    ``Io`` rows and, for internal-node models, the fused ``I_N`` rows).
    """
    if not table_groups:
        return ()
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2:
        raise TableError("contract_leading_spans expects a (K, L) coordinate array")
    total, num_contracted = coords.shape
    arity = len(table_groups[0])
    if arity == 0:
        raise TableError("contract_leading_spans needs at least one table per group")
    first = table_groups[0][0]
    if not 1 <= num_contracted < first.ndim:
        raise TableError(
            f"table {first.name!r}: cannot contract {num_contracted} of "
            f"{first.ndim} axes (need 1 <= L < ndim)"
        )
    # Bracket indices and weights depend only on the axis *points*; axis
    # names may differ (e.g. per-cell pin labels on one shared voltage grid).
    leading = tuple(axis.points for axis in first.axes[:num_contracted])
    for group in table_groups:
        if len(group) != arity:
            raise TableError(
                "contract_leading_spans requires the same table arity in every group"
            )
        for position, table in enumerate(group):
            if (
                table.ndim != first.ndim
                or tuple(axis.points for axis in table.axes[:num_contracted]) != leading
            ):
                raise TableError(
                    "contract_leading_spans requires value-equal leading axes "
                    f"({first.name!r} vs {table.name!r})"
                )
            reference = table_groups[0][position]
            if table.values.shape[num_contracted:] != reference.values.shape[num_contracted:]:
                raise TableError(
                    "contract_leading_spans requires matching trailing shapes "
                    f"({reference.name!r} vs {table.name!r})"
                )
    if len(spans) != len(table_groups):
        raise TableError("contract_leading_spans needs one span per table group")
    cursor = 0
    for start, stop in spans:
        if start != cursor or stop < start:
            raise TableError(
                f"spans must partition the coordinate rows contiguously, got {spans}"
            )
        cursor = stop
    if cursor != total:
        raise TableError(
            f"spans cover {cursor} rows but coords has {total}"
        )
    outs = tuple(
        np.empty((total,) + table_groups[0][position].values.shape[num_contracted:])
        for position in range(arity)
    )
    # One value array per table position, all groups' blocks stacked end to
    # end, plus a per-row offset selecting the owning group's block range.
    # A chunk then needs ONE gather-and-lerp pass per position instead of one
    # per (group, position): per-chunk overhead stays flat as MMMC fuses more
    # corners into the batch.  Every gather and weight op is per-row, so each
    # row's output is bitwise the per-group ``_contract_apply`` result.
    shape = first.values.shape
    blocks_per_table = 1
    for extent in shape[:num_contracted]:
        blocks_per_table *= extent
    stacked = []
    for position in range(arity):
        views = [
            group[position].values.reshape((-1,) + group[position].values.shape[num_contracted:])
            for group in table_groups
        ]
        stacked.append(views[0] if len(views) == 1 else np.concatenate(views, axis=0))
    row_offsets = np.empty(total, dtype=np.intp)
    for index, (start, stop) in enumerate(spans):
        row_offsets[start:stop] = index * blocks_per_table
    strides = [1] * num_contracted
    for dim in range(num_contracted - 2, -1, -1):
        strides[dim] = strides[dim + 1] * shape[dim + 1]

    step = int(chunk) if chunk else max(total, 1)
    for chunk_start in range(0, total, step):
        chunk_stop = min(chunk_start + step, total)
        lows, fracs, _ = first._contract_weights(coords[chunk_start:chunk_stop])
        num_rows = chunk_stop - chunk_start
        base = lows[:, 0] * strides[0]
        for dim in range(1, num_contracted):
            base = base + lows[:, dim] * strides[dim]
        base = base + row_offsets[chunk_start:chunk_stop]
        for position in range(arity):
            blocks = stacked[position]
            tail_ones = (1,) * (blocks.ndim - 1)
            partial = {
                bits: blocks[base + sum(b * s for b, s in zip(bits, strides))]
                for bits in itertools.product((0, 1), repeat=num_contracted)
            }
            for dim in range(num_contracted):
                high_weight = fracs[:, dim].reshape((num_rows,) + tail_ones)
                low_weight = 1.0 - high_weight
                partial = {
                    rest: partial[(0,) + rest] * low_weight
                    + partial[(1,) + rest] * high_weight
                    for rest in itertools.product((0, 1), repeat=num_contracted - dim - 1)
                }
            outs[position][chunk_start:chunk_stop] = partial[()]
    return outs


def tabulate(
    function: Callable[..., float],
    axes: Sequence[Axis],
    name: str = "",
    vectorized: bool = False,
) -> NDTable:
    """Sample a callable over the cartesian product of the axes.

    ``function`` is called with one positional argument per axis, in axis
    order.  This is the workhorse used by the characterization procedures to
    turn "measure the current at this bias point" routines into tables.

    When ``vectorized`` is true the function is called *once* with one
    broadcastable coordinate array per axis (``np.meshgrid(..., indexing='ij')``
    style) and must return the full value grid — the sampling analogue of
    :meth:`NDTable.evaluate_batch`.
    """
    shape = tuple(len(axis) for axis in axes)
    if vectorized:
        grids = np.meshgrid(*(axis.as_array() for axis in axes), indexing="ij")
        values = np.asarray(function(*grids), dtype=float)
        if values.shape != shape:
            raise TableError(
                f"vectorized tabulate for {name!r}: function returned shape "
                f"{values.shape}, expected {shape}"
            )
        return NDTable(axes, values, name=name)
    values = np.empty(shape, dtype=float)
    for index in itertools.product(*(range(len(axis)) for axis in axes)):
        coords = [axis.points[i] for axis, i in zip(axes, index)]
        values[index] = function(*coords)
    return NDTable(axes, values, name=name)
