"""N-dimensional lookup tables with multilinear interpolation.

The paper stores the characterized current sources ``Io(V)`` / ``I_N(V)`` and
the parasitic capacitances as 4-D lookup tables over the node voltages.  This
module provides that data structure: an :class:`NDTable` over a list of
:class:`~repro.lut.grid.Axis` objects, evaluated with multilinear
interpolation and clamped extrapolation (the standard behaviour of
liberty-style characterization tables).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TableError
from .grid import Axis

__all__ = ["NDTable", "tabulate"]


class NDTable:
    """A dense N-dimensional table ``f(x_1, ..., x_N)``.

    Parameters
    ----------
    axes:
        Ordered axis definitions; the length of each axis must match the
        corresponding dimension of ``values``.
    values:
        N-dimensional array of samples.
    name:
        Optional label for error messages and reports.
    """

    __slots__ = ("axes", "values", "name")

    def __init__(self, axes: Sequence[Axis], values: np.ndarray, name: str = ""):
        values = np.asarray(values, dtype=float)
        if len(axes) == 0:
            raise TableError("a table needs at least one axis")
        if values.ndim != len(axes):
            raise TableError(
                f"table {name!r}: value array has {values.ndim} dimensions "
                f"but {len(axes)} axes were given"
            )
        for dim, axis in enumerate(axes):
            if values.shape[dim] != len(axis):
                raise TableError(
                    f"table {name!r}: axis {axis.name!r} has {len(axis)} points "
                    f"but values dimension {dim} has size {values.shape[dim]}"
                )
        if not np.all(np.isfinite(values)):
            raise TableError(f"table {name!r}: values contain NaN or infinity")
        self.axes = tuple(axes)
        self.values = values
        self.name = name

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.axes)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def __repr__(self) -> str:
        dims = " x ".join(f"{axis.name}[{len(axis)}]" for axis in self.axes)
        return f"<NDTable {self.name!r}: {dims}>"

    # ------------------------------------------------------------------
    def evaluate(self, *coordinates: float) -> float:
        """Multilinear interpolation at the given coordinates (positional)."""
        if len(coordinates) != self.ndim:
            raise TableError(
                f"table {self.name!r} expects {self.ndim} coordinates, got {len(coordinates)}"
            )
        brackets = [axis.bracket(value) for axis, value in zip(self.axes, coordinates)]
        result = 0.0
        for corner in itertools.product((0, 1), repeat=self.ndim):
            weight = 1.0
            index: List[int] = []
            for (low_index, fraction), bit in zip(brackets, corner):
                weight *= fraction if bit else (1.0 - fraction)
                index.append(low_index + bit)
            if weight == 0.0:
                continue
            result += weight * float(self.values[tuple(index)])
        return result

    def __call__(self, *coordinates: float) -> float:
        return self.evaluate(*coordinates)

    def evaluate_dict(self, coordinates: Mapping[str, float]) -> float:
        """Interpolate using axis names as keys."""
        try:
            ordered = [coordinates[name] for name in self.axis_names]
        except KeyError as exc:
            raise TableError(
                f"table {self.name!r} requires coordinates {self.axis_names}, "
                f"got {tuple(coordinates)}"
            ) from exc
        return self.evaluate(*ordered)

    def gradient(self, *coordinates: float, step: float = 1e-3) -> Tuple[float, ...]:
        """Central-difference gradient with respect to each coordinate."""
        grads = []
        for dim in range(self.ndim):
            forward = list(coordinates)
            backward = list(coordinates)
            forward[dim] += step
            backward[dim] -= step
            grads.append((self.evaluate(*forward) - self.evaluate(*backward)) / (2 * step))
        return tuple(grads)

    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "NDTable":
        return NDTable(self.axes, self.values * factor, name=self.name)

    def shifted(self, offset: float) -> "NDTable":
        return NDTable(self.axes, self.values + offset, name=self.name)

    def minimum(self) -> float:
        return float(self.values.min())

    def maximum(self) -> float:
        return float(self.values.max())

    def mean(self) -> float:
        return float(self.values.mean())

    def reduce_mean(self) -> float:
        """Collapse the whole table to its average value.

        The paper stores an *average* capacitance over the characterization
        ramp slopes; this helper provides that reduction.
        """
        return self.mean()

    def slice(self, axis_name: str, value: float) -> "NDTable":
        """Fix one axis at ``value`` (nearest-neighbour) and drop it."""
        if self.ndim == 1:
            raise TableError("cannot slice a one-dimensional table")
        if axis_name not in self.axis_names:
            raise TableError(f"table {self.name!r} has no axis {axis_name!r}")
        dim = self.axis_names.index(axis_name)
        axis = self.axes[dim]
        nearest = int(np.argmin(np.abs(axis.as_array() - value)))
        taken = np.take(self.values, nearest, axis=dim)
        remaining = tuple(a for i, a in enumerate(self.axes) if i != dim)
        return NDTable(remaining, taken, name=f"{self.name}[{axis_name}={axis.points[nearest]:g}]")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable representation (used by :mod:`repro.lut.io`)."""
        return {
            "name": self.name,
            "axes": [{"name": a.name, "points": list(a.points)} for a in self.axes],
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "NDTable":
        axes = [Axis(name=a["name"], points=tuple(a["points"])) for a in data["axes"]]
        return cls(axes, np.asarray(data["values"], dtype=float), name=data.get("name", ""))


def tabulate(
    function: Callable[..., float],
    axes: Sequence[Axis],
    name: str = "",
) -> NDTable:
    """Sample a callable over the cartesian product of the axes.

    ``function`` is called with one positional argument per axis, in axis
    order.  This is the workhorse used by the characterization procedures to
    turn "measure the current at this bias point" routines into tables.
    """
    shape = tuple(len(axis) for axis in axes)
    values = np.empty(shape, dtype=float)
    for index in itertools.product(*(range(len(axis)) for axis in axes)):
        coords = [axis.points[i] for axis, i in zip(axes, index)]
        values[index] = function(*coords)
    return NDTable(axes, values, name=name)
