"""N-dimensional lookup tables used to store characterized model components."""

from .grid import Axis, voltage_axis
from .io import dumps_tables, load_tables, loads_tables, save_tables
from .table import NDTable, tabulate

__all__ = [
    "Axis",
    "voltage_axis",
    "NDTable",
    "tabulate",
    "save_tables",
    "load_tables",
    "dumps_tables",
    "loads_tables",
]
