"""Axis (grid) definitions for N-dimensional characterization tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import TableError

__all__ = ["Axis", "voltage_axis"]


@dataclass(frozen=True)
class Axis:
    """One dimension of a lookup table.

    Attributes
    ----------
    name:
        Axis label, conventionally the node whose voltage it represents
        (e.g. ``"VA"``, ``"VN"``, ``"Vo"``).
    points:
        Strictly increasing grid coordinates.
    """

    name: str
    points: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise TableError(f"axis {self.name!r} needs at least two points")
        diffs = np.diff(np.asarray(self.points))
        if np.any(diffs <= 0):
            raise TableError(f"axis {self.name!r} points must be strictly increasing")

    def __len__(self) -> int:
        return len(self.points)

    @property
    def lower(self) -> float:
        return self.points[0]

    @property
    def upper(self) -> float:
        return self.points[-1]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.points, dtype=float)

    def clamp(self, value: float) -> float:
        """Clamp a query coordinate into the axis range."""
        return min(max(value, self.lower), self.upper)

    def bracket(self, value: float) -> Tuple[int, float]:
        """Locate ``value`` on the axis.

        Returns
        -------
        (index, fraction):
            ``index`` is the lower grid index of the enclosing interval and
            ``fraction`` the normalized position inside it (0..1).  Queries
            outside the range are clamped to the nearest edge interval.
        """
        points = self.as_array()
        value = self.clamp(value)
        index = int(np.searchsorted(points, value, side="right") - 1)
        index = min(max(index, 0), len(points) - 2)
        span = points[index + 1] - points[index]
        fraction = (value - points[index]) / span if span > 0 else 0.0
        return index, float(fraction)


def voltage_axis(
    name: str,
    vdd: float,
    num_points: int = 7,
    margin: float = 0.1,
) -> Axis:
    """Build a uniformly spaced voltage axis spanning ``[-margin, vdd + margin]``.

    The margin implements the paper's "safety margin" ``delta_v`` for voltages
    that overshoot the rails during noisy transitions.
    """
    if num_points < 2:
        raise TableError("num_points must be at least 2")
    if margin < 0:
        raise TableError("margin must be non-negative")
    points = np.linspace(-margin, vdd + margin, num_points)
    return Axis(name=name, points=tuple(float(p) for p in points))
