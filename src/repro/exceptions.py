"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without intercepting unrelated Python
exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class NetlistError(ReproError):
    """Raised when a circuit netlist is malformed.

    Examples: duplicate element names, references to undeclared nodes,
    non-positive device geometry, or an attempt to ground a node twice.
    """


class AnalysisError(ReproError):
    """Raised when a simulation analysis cannot be completed."""


class ConvergenceError(AnalysisError):
    """Raised when a Newton-Raphson iteration fails to converge.

    Attributes
    ----------
    iterations:
        Number of Newton iterations that were attempted before giving up.
    residual:
        Maximum absolute KCL residual (in amperes) at the last iteration.
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class CharacterizationError(ReproError):
    """Raised when cell characterization cannot produce a valid model."""


class ModelError(ReproError):
    """Raised when a current-source model is used inconsistently.

    Examples: evaluating an uncharacterized model, querying a pin that the
    model does not define, or simulating with an incompatible load object.
    """


class WaveformError(ReproError):
    """Raised for invalid waveform construction or measurement requests."""


class TableError(ReproError):
    """Raised when a lookup table is built from inconsistent axes or data."""


class TimingError(ReproError):
    """Raised by the STA layer for malformed timing graphs or netlists."""
