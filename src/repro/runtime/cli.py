"""Command-line entry point: run paper-figure sets on the parallel runtime.

Usage::

    python -m repro.runtime.cli --figures fig5 fig9 --workers 4 --cache ~/.repro-cache
    python -m repro.runtime.cli --figures all --workers 8 --executor thread
    python -m repro.runtime.cli --figures fig3 --settings paper --json report.json
    python -m repro.runtime.cli --sta dag:w16:d4:s3 --engine both --workers 2 --cache DIR
    python -m repro.runtime.cli --sta dag:w16:d4:s3 --corners TT,FF,SS --cache DIR
    python -m repro.runtime.cli --sta dag:w16:d4:s3 --incremental --cache DIR

The CLI builds one :class:`~repro.experiments.ExperimentContext` wired to the
chosen executor and disk cache, pre-characterizes every model the requested
figures need (as one parallel job set), then runs the figures and reports
per-figure wall-clock plus cache statistics.  A second invocation with the
same ``--cache`` directory skips all characterization jobs — the hits are
logged and counted in the summary.

``--sta`` switches to the timing-engine mode: each argument is a synthetic
netlist spec (``chain:inv:64``, ``tree:4:2``, ``dag:w16:d8:s42`` — see
:mod:`repro.sta.generate`), whose models are characterized as one parallel,
cache-aware job set before the requested engine(s) propagate seeded input
waveforms through the design.  With ``--engine both`` the batched and
sequential waveform engines both run and the CLI *fails* unless their
waveforms agree to 1e-9 V, which is what the CI smoke relies on.

Two further ``--sta`` axes:

* ``--corners TT,FF,SS`` times every spec across the named process corners
  (per-corner libraries characterized as parallel content-addressed jobs)
  and reports the primary-output arrival deltas against the TT corner;
* ``--incremental`` exercises the content-addressed propagation caches of
  *both* engines: a cold run, a warm repeat that must integrate (CSM) /
  evaluate (NLDM) *zero* instances, and one ECO-style cell swap that must
  re-time only the affected cone while matching a cold full rebuild (1e-9 V
  for waveforms, exact event equality for NLDM) — non-zero exit on any
  violation (the CI incremental smoke).

``--cache-format packed`` stores results in the packed single-file mmap
store (:mod:`repro.runtime.store`) instead of per-entry ``.npz`` files;
``auto`` (the default) keeps whatever layout the cache directory already
uses.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from .executor import default_executor
from .store import open_result_store

__all__ = ["main", "FIGURES", "MODEL_KINDS"]

#: Figure name -> callable(context) -> result object with ``summary()``.
FIGURES: Dict[str, object] = {}

#: Figure name -> model kinds it characterizes (prewarmed in parallel).
MODEL_KINDS: Dict[str, tuple] = {
    "fig3": (),
    "fig4": (),
    "fig5": (),
    "fig9": ("mcsm", "mis"),
    "fig10": ("mcsm",),
    "fig11": ("mcsm", "sis"),
    "fig12": ("mcsm",),
    "sta": (),
    "corners": (),
}


def _load_figures() -> None:
    """Populate FIGURES lazily so ``--help`` stays fast."""
    if FIGURES:
        return
    from ..experiments import (
        run_corner_sweep,
        run_fig3,
        run_fig4,
        run_fig5,
        run_fig9,
        run_fig10,
        run_fig11,
        run_fig12,
        run_sta_scale,
    )

    FIGURES.update(
        {
            "fig3": lambda ctx: run_fig3(ctx),
            "fig4": lambda ctx: run_fig4(ctx),
            "fig5": lambda ctx: run_fig5(ctx),
            "fig9": lambda ctx: run_fig9(ctx, fanout=1),
            "fig10": lambda ctx: run_fig10(ctx),
            "fig11": lambda ctx: run_fig11(ctx),
            "fig12": lambda ctx: run_fig12(ctx),
            "sta": lambda ctx: run_sta_scale(ctx),
            "corners": lambda ctx: run_corner_sweep(ctx),
        }
    )


def build_context(settings: str, executor=None, cache: Optional[ResultCache] = None):
    """An :class:`ExperimentContext` for ``settings`` ('quick' or 'paper')."""
    from ..characterization import CharacterizationConfig
    from ..experiments import ExperimentContext

    if settings == "quick":
        return ExperimentContext(
            characterization=CharacterizationConfig(io_grid_points=5),
            reference_time_step=4e-12,
            model_time_step=2e-12,
            executor=executor,
            cache=cache,
        )
    if settings == "paper":
        return ExperimentContext(executor=executor, cache=cache)
    raise ValueError(f"unknown settings {settings!r}")


def _run_corner_mode(args, context) -> int:
    """--sta --corners: time every spec across the requested process corners.

    ``--corner-mode`` picks the path: ``serial`` (one engine run per corner,
    the reference), ``batched`` (all corners in one MMMC tensor pass) or
    ``both`` (run both and FAIL — exit 1 — unless every corner's waveforms
    agree to 1e-9 V)."""
    from ..experiments import batched_corner_sta_sweep, corner_sta_sweep
    from ..sta.engine import waveform_deviation

    mode = args.corner_mode
    corners = tuple(name.strip().upper() for name in args.corners.split(",") if name.strip())
    report: Dict[str, object] = {
        "mode": "sta-corners",
        "settings": args.settings,
        "workers": args.workers,
        "corners": list(corners),
        "corner_mode": mode,
        "seed": args.seed,
        "designs": {},
    }
    failures = 0
    total_start = time.perf_counter()
    for spec in args.sta:
        entry: Dict[str, object] = {}
        serial = None
        if mode in ("serial", "both"):
            serial = corner_sta_sweep(
                context,
                spec=spec,
                corners=corners,
                seed=args.seed,
                keep_results=mode == "both",
            )
            print(serial.summary())
            deltas = serial.deltas()
            entry.update(
                {
                    "gates": serial.gates,
                    "reference_corner": serial.reference_corner,
                    "corners": {
                        point.corner: {
                            "vdd": point.vdd,
                            "characterization_seconds": round(point.characterization_seconds, 4),
                            "models_executed": point.models_executed,
                            "propagation_seconds": round(point.propagation_seconds, 4),
                            "arrivals": point.arrivals,
                            "arrival_deltas": deltas[point.corner],
                        }
                        for point in serial.points
                    },
                }
            )
        if mode in ("batched", "both"):
            batched = batched_corner_sta_sweep(
                context, spec=spec, corners=corners, seed=args.seed
            )
            entry["gates"] = batched.gates
            entry["batched"] = {
                "corners": batched.corners,
                "characterization_seconds": round(batched.characterization_seconds, 4),
                "propagation_seconds": round(batched.propagation_seconds, 4),
                "arrivals": batched.arrivals,
                "integrations": {
                    name: stats.get("integrations") for name, stats in batched.stats.items()
                },
            }
            print(
                f"  batched MMMC: {len(batched.corners)} corners in "
                f"{batched.propagation_seconds:.3f} s"
            )
            if mode == "both":
                deviation = 0.0
                for point in serial.points:
                    deviation = max(
                        deviation,
                        waveform_deviation(batched.result.result(point.corner), point.result),
                    )
                serial_seconds = sum(p.propagation_seconds for p in serial.points)
                speedup = serial_seconds / max(batched.propagation_seconds, 1e-12)
                entry["max_abs_delta_v"] = deviation
                entry["batched_speedup"] = round(speedup, 3)
                ok = deviation <= 1e-9
                failures += 0 if ok else 1
                print(
                    f"  equivalence: max |dV| = {deviation:.2e} V over {len(corners)} "
                    f"corners, batched speedup {speedup:.2f}x vs serial"
                    + ("" if ok else "  <-- FAILED")
                )
        report["designs"][spec] = entry
    report["total_seconds"] = round(time.perf_counter() - total_start, 4)
    if context.cache is not None:
        print(f"cache: {context.cache.stats} ({args.cache})")
        report["cache"] = context.cache.stats.as_dict()
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    if failures:
        print(f"{failures} design(s) FAILED the batched/serial corner equivalence check")
        return 1
    return 0


def _run_incremental_mode(args, context, models) -> int:
    """--sta --incremental: cold run, warm no-op repeat, one ECO edit.

    Fails (exit 1) unless the warm repeat integrates zero waveforms, the
    edited run re-integrates only the affected region, and the edited result
    matches a cold full rebuild to 1e-9 V.
    """
    from ..sta.engine import CSMEngine, NLDMEngine, waveform_deviation
    from ..sta.generate import (
        generate_netlist,
        primary_input_events,
        primary_input_waveforms,
    )
    from ..sta.netlist import eco_swap_candidate

    options = context.model_options()
    report: Dict[str, object] = {
        "mode": "sta-incremental",
        "settings": args.settings,
        "seed": args.seed,
        "designs": {},
    }
    failures = 0
    for spec in args.sta:
        netlist = generate_netlist(context.library, spec)
        waveforms = primary_input_waveforms(netlist, seed=args.seed)
        input_events = primary_input_events(netlist, seed=args.seed)
        instances = len(netlist.instances)

        # NLDM phase first: warm repeat must evaluate zero instances.  (The
        # engine prewarms receiver SIS models itself, so its loads — and so
        # its keys — are stable across the later CSM runs.)
        NLDMEngine(netlist, models, cache=context.cache).run(input_events)
        nldm_warm = NLDMEngine(netlist, models, cache=context.cache).run(input_events)
        nldm_warm_ok = (nldm_warm.stats or {}).get("integrations", -1) == 0

        start = time.perf_counter()
        CSMEngine(netlist, models, options=options).run(waveforms)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = CSMEngine(netlist, models, options=options).run(waveforms)
        warm_seconds = time.perf_counter() - start
        warm_stats = warm.stats or {}
        warm_ok = warm_stats.get("integrations", -1) == 0

        # ECO edit: the cheapest pin-compatible cell swap in the design.
        candidate = eco_swap_candidate(netlist)
        if candidate is None:
            failures += 0 if (warm_ok and nldm_warm_ok) else 1
            print(
                f"{spec}: cold {cold_seconds:.3f} s, warm {warm_seconds:.3f} s "
                f"({warm_stats.get('integrations')} integrations); no pin-compatible "
                f"swap candidate, edit phase skipped"
                + ("" if (warm_ok and nldm_warm_ok) else "  <-- FAILED")
            )
            report["designs"][spec] = {
                "gates": instances,
                "cold_seconds": round(cold_seconds, 4),
                "warm_seconds": round(warm_seconds, 4),
                "warm_stats": warm_stats,
            }
            continue
        region_size, target, partner = candidate
        netlist.swap_cell(target, partner)
        start = time.perf_counter()
        edited = CSMEngine(netlist, models, options=options).run(waveforms)
        edit_seconds = time.perf_counter() - start
        edit_stats = edited.stats or {}
        reference = CSMEngine(netlist, models, options=options, use_cache=False).run(waveforms)
        deviation = waveform_deviation(edited, reference)
        edit_ok = (
            0 < edit_stats.get("integrations", 0) <= region_size
            and deviation <= 1e-9
            and edited.model_used == reference.model_used
        )

        # NLDM edit: re-evaluates only the dirty region and matches a cold
        # no-cache rebuild exactly (events round-trip bitwise).
        nldm_edited = NLDMEngine(netlist, models, cache=context.cache).run(input_events)
        nldm_reference = NLDMEngine(netlist, models, use_cache=False).run(input_events)
        nldm_edit_stats = nldm_edited.stats or {}
        nldm_ok = (
            nldm_warm_ok
            and 0 < nldm_edit_stats.get("integrations", 0) <= region_size
            and nldm_edited.events == nldm_reference.events
            and nldm_edited.mis_flags == nldm_reference.mis_flags
        )

        failures += 0 if (warm_ok and edit_ok and nldm_ok) else 1
        print(
            f"{spec}: cold {cold_seconds:.3f} s, warm {warm_seconds:.3f} s "
            f"({warm_stats.get('integrations')} integrations"
            f"{', full-run hit' if warm_stats.get('full_run_hit') else ''}); "
            f"swap {target} -> {partner}: {edit_stats.get('integrations')}/{instances} "
            f"re-integrated (affected region {region_size}), max |dV| {deviation:.2e} V; "
            f"nldm warm {(nldm_warm.stats or {}).get('integrations')} / edit "
            f"{nldm_edit_stats.get('integrations')} evaluations"
            + ("" if (warm_ok and edit_ok and nldm_ok) else "  <-- FAILED")
        )
        report["designs"][spec] = {
            "gates": instances,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_stats": warm_stats,
            "edit": {
                "target": target,
                "partner": partner,
                "affected_region": region_size,
                "seconds": round(edit_seconds, 4),
                "stats": edit_stats,
                "max_abs_delta_v": deviation,
            },
            "nldm": {
                "warm_stats": nldm_warm.stats,
                "edit_stats": nldm_edit_stats,
                "events_equal": nldm_edited.events == nldm_reference.events,
            },
        }
    if context.cache is not None:
        print(f"cache: {context.cache.stats} ({args.cache})")
        report["cache"] = context.cache.stats.as_dict()
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    if failures:
        print(f"{failures} design(s) FAILED the incremental-STA checks")
        return 1
    return 0


def _run_sta_mode(args) -> int:
    """Drive the levelized timing engine(s) over generated netlists."""
    import numpy as np

    from ..experiments import timing_models_for
    from ..sta.engine import CSMEngine, waveform_deviation
    from ..sta.generate import generate_netlist, primary_input_waveforms

    executor = default_executor(args.workers, args.executor)
    cache = (
        open_result_store(args.cache, args.cache_format, shards=args.shards)
        if args.cache is not None
        else None
    )
    context = build_context(args.settings, executor=executor, cache=cache)
    models = timing_models_for(context)
    streaming = args.memory_mode == "stream"
    if streaming:
        if cache is None:
            print("--memory-mode stream needs --cache DIR (retired levels spill there)")
            return 2
        if args.corners is not None or args.incremental:
            print("--memory-mode stream composes with neither --corners nor --incremental")
            return 2
    if args.corners is not None:
        return _run_corner_mode(args, context)
    if args.incremental:
        if cache is None:
            print("--incremental needs --cache DIR (the warm repeat reads the disk cache)")
            return 2
        return _run_incremental_mode(args, context, models)
    options = context.model_options()
    if args.engine == "hybrid":
        if streaming:
            print("--engine hybrid does not support --memory-mode stream")
            return 2
        return _run_hybrid_mode(args, context, models)
    if args.required is not None or args.top_k != "all":
        print("--required/--top-k only apply to --engine hybrid")
        return 2
    engines = ("batched", "sequential") if args.engine == "both" else (args.engine,)
    if streaming and "batched" not in engines:
        print("--memory-mode stream needs the batched engine (--engine batched/both)")
        return 2

    report: Dict[str, object] = {
        "mode": "sta",
        "settings": args.settings,
        "workers": args.workers,
        "executor": executor.describe(),
        "engine": args.engine,
        "seed": args.seed,
        "memory_mode": args.memory_mode,
        "memory_budget_bytes": args.memory_budget,
        "designs": {},
    }
    failures = 0
    total_start = time.perf_counter()
    for spec in args.sta:
        netlist = generate_netlist(context.library, spec)
        waveforms = primary_input_waveforms(netlist, seed=args.seed)
        start = time.perf_counter()
        executed = models.prewarm_for_netlist(netlist, kinds=("sis", "mis"))
        characterization = time.perf_counter() - start
        entry: Dict[str, object] = {
            "gates": len(netlist.instances),
            "levels": len(netlist.topological_generations()),
            "characterization_seconds": round(characterization, 4),
            "models_executed": executed,
        }
        print(
            f"{spec}: {entry['gates']} gates, {entry['levels']} levels "
            f"(characterization {characterization:.3f} s, {executed} executed)"
        )
        results = {}
        for engine_kind in engines:
            stream_kind = streaming and engine_kind == "batched"
            engine = CSMEngine(
                netlist,
                models,
                options=options,
                batched=engine_kind == "batched",
                tensor=args.tensor == "on",
                memory_mode="stream" if stream_kind else "resident",
                memory_budget_bytes=args.memory_budget if stream_kind else None,
            )
            start = time.perf_counter()
            results[engine_kind] = engine.run(waveforms)
            elapsed = time.perf_counter() - start
            entry[f"{engine_kind}_seconds"] = round(elapsed, 4)
            print(f"  {engine_kind:<10} {elapsed:8.3f} s")
            if stream_kind:
                stream_stats = engine.last_stats
                # Bitwise equivalence against a pure-compute resident run
                # (use_cache=False so nothing is read back from the spilled
                # store): the streaming mode must change memory behaviour
                # only, never a single sample.
                reference_engine = CSMEngine(
                    netlist,
                    models,
                    options=options,
                    batched=True,
                    tensor=args.tensor == "on",
                    use_cache=False,
                )
                reference = reference_engine.run(waveforms)
                streamed = results[engine_kind]
                bitwise = streamed.model_used == reference.model_used and all(
                    np.array_equal(
                        streamed.waveforms[net].values, reference.waveforms[net].values
                    )
                    for net in reference.waveforms
                )
                entry["stream"] = {
                    "budget_bytes": args.memory_budget,
                    "spills": stream_stats.spills if stream_stats else 0,
                    "faults": stream_stats.faults if stream_stats else 0,
                    "bitwise_equal_vs_resident": bitwise,
                    "max_abs_delta_v_vs_resident": waveform_deviation(
                        streamed, reference
                    ),
                }
                failures += 0 if bitwise else 1
                print(
                    f"  stream: {entry['stream']['spills']} spills, "
                    f"{entry['stream']['faults']} faults, resident equivalence "
                    f"{'bitwise' if bitwise else 'FAILED'}"
                )
        if len(engines) == 2:
            batched, sequential = results["batched"], results["sequential"]
            deviation = waveform_deviation(batched, sequential)
            bookkeeping = batched.model_used == sequential.model_used
            speedup = entry["sequential_seconds"] / max(entry["batched_seconds"], 1e-12)
            entry["speedup"] = round(speedup, 3)
            entry["max_abs_delta_v"] = deviation
            entry["model_selection_equal"] = bookkeeping
            ok = deviation <= 1e-9 and bookkeeping
            failures += 0 if ok else 1
            print(
                f"  equivalence: max |dV| = {deviation:.2e} V, model selection "
                f"{'identical' if bookkeeping else 'DIFFERS'}, speedup {speedup:.2f}x"
                + ("" if ok else "  <-- FAILED")
            )
        report["designs"][spec] = entry
    report["total_seconds"] = round(time.perf_counter() - total_start, 4)

    if cache is not None:
        print(f"cache: {cache.stats} ({args.cache})")
        report["cache"] = cache.stats.as_dict()
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    if failures:
        print(f"{failures} design(s) FAILED the batched/sequential equivalence check")
        return 1
    return 0


def _run_hybrid_mode(args, context, models) -> int:
    """--engine hybrid: criticality-adaptive NLDM+CSM vs a full-CSM reference.

    Every spec is run through :class:`HybridEngine` (with the --required /
    --top-k knobs) and through a plain full CSM engine on the same stimuli.
    The report records the speed-vs-exactness point: wall-clocks, the
    fraction of instances refined through CSM, and the max endpoint-arrival
    error against the reference.  When top-k covers every endpoint the
    refinement must be bitwise-identical to the full run (exit 1 otherwise)
    — that is the contract the CI hybrid smoke leg asserts.
    """
    import numpy as np

    from ..exceptions import TimingError
    from ..sta.engine import CSMEngine
    from ..sta.generate import generate_netlist, primary_input_waveforms
    from ..sta.hybrid import HybridEngine, events_from_waveforms

    if args.top_k == "all":
        top_k: object = "all"
    else:
        try:
            top_k = int(args.top_k)
        except ValueError:
            print(f"--top-k must be an integer or 'all', got {args.top_k!r}")
            return 2
        if top_k < 0:
            print(f"--top-k must be >= 0, got {top_k}")
            return 2
    options = context.model_options()
    report: Dict[str, object] = {
        "mode": "sta-hybrid",
        "settings": args.settings,
        "engine": "hybrid",
        "seed": args.seed,
        "required": args.required,
        "top_k": args.top_k,
        "designs": {},
    }
    failures = 0
    total_start = time.perf_counter()
    for spec in args.sta:
        netlist = generate_netlist(context.library, spec)
        waveforms = primary_input_waveforms(netlist, seed=args.seed)
        start = time.perf_counter()
        executed = models.prewarm_for_netlist(netlist, kinds=("sis", "mis"))
        characterization = time.perf_counter() - start
        endpoints = list(netlist.primary_outputs)
        covers_all = top_k == "all" or top_k >= len(endpoints)
        print(
            f"{spec}: {len(netlist.instances)} gates, {len(endpoints)} endpoints "
            f"(characterization {characterization:.3f} s, {executed} executed)"
        )
        hybrid_kwargs: Dict[str, object] = {"top_k": top_k}
        if args.required is not None:
            hybrid_kwargs["required"] = args.required
        hybrid = HybridEngine(netlist, models, options=options, **hybrid_kwargs)
        start = time.perf_counter()
        result = hybrid.run(waveforms)
        hybrid_seconds = time.perf_counter() - start
        reference_engine = CSMEngine(netlist, models, options=options)
        start = time.perf_counter()
        reference = reference_engine.run(waveforms)
        full_seconds = time.perf_counter() - start
        reference_arrivals = {
            net: event.arrival
            for net, event in events_from_waveforms(
                reference.waveforms, result.vdd
            ).items()
        }
        max_error = 0.0
        presence_mismatch = []
        for net in endpoints:
            try:
                hybrid_arrival = result.arrival(net)
            except TimingError:
                hybrid_arrival = None
            full_arrival = reference_arrivals.get(net)
            if (hybrid_arrival is None) != (full_arrival is None):
                presence_mismatch.append(net)
            elif hybrid_arrival is not None:
                max_error = max(max_error, abs(hybrid_arrival - full_arrival))
        bitwise = all(
            np.array_equal(
                result.waveforms[net].values, reference.waveforms[net].values
            )
            for net in result.exact_nets
        )
        max_exact_dv = max(
            (
                float(
                    np.abs(
                        result.waveforms[net].values - reference.waveforms[net].values
                    ).max()
                )
                for net in result.exact_nets
            ),
            default=0.0,
        )
        entry: Dict[str, object] = {
            "gates": len(netlist.instances),
            "endpoints": len(endpoints),
            "characterization_seconds": round(characterization, 4),
            "hybrid_seconds": round(hybrid_seconds, 4),
            "full_csm_seconds": round(full_seconds, 4),
            "csm_fraction": round(result.csm_fraction, 6),
            "iterations": len(result.iterations),
            "refined_instances": len(result.refined_instances),
            "exact_nets": len(result.exact_nets),
            "max_arrival_error_s": max_error,
            "arrival_presence_mismatches": presence_mismatch,
            "max_exact_value_error_v": max_exact_dv,
            "exact_nets_bitwise_vs_full": bitwise,
            "covers_all_endpoints": covers_all,
        }
        # Partial refinement re-batches the levels, so exact nets agree with
        # the full run only to the integrator's cross-batch rounding (1e-9 V);
        # full cover normalizes to an unrestricted run and must be bitwise,
        # with endpoint arrivals (including switches-vs-stable presence)
        # agreeing too.
        ok = max_exact_dv <= 1e-9
        if covers_all:
            ok = bitwise and max_error <= 1e-9 and not presence_mismatch
        failures += 0 if ok else 1
        print(
            f"  hybrid {hybrid_seconds:8.3f} s vs full CSM {full_seconds:8.3f} s, "
            f"csm fraction {result.csm_fraction:.3f}, "
            f"{len(result.iterations)} iteration(s), "
            f"max arrival error {max_error:.2e} s"
            + ("" if ok else "  <-- FAILED")
        )
        report["designs"][spec] = entry
    report["total_seconds"] = round(time.perf_counter() - total_start, 4)
    if context.cache is not None:
        print(f"cache: {context.cache.stats} ({args.cache})")
        report["cache"] = context.cache.stats.as_dict()
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    if failures:
        print(f"{failures} design(s) FAILED the hybrid-vs-CSM checks")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.cli",
        description="Run paper-figure experiment sets on the parallel runtime.",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        default=["all"],
        help="figure names (fig3 fig4 fig5 fig9 fig10 fig11 fig12, plus the "
        "'sta' engine-scale sweep) — 'all' runs the paper figures only",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel worker count; 1 means serial execution (default)",
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="pool flavour when --workers > 1 (default: process)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory (created if missing)",
    )
    parser.add_argument(
        "--cache-format",
        choices=("auto", "npz", "packed", "sharded"),
        default="auto",
        help="result-store layout: per-entry .npz files, the packed "
        "single-file mmap store, or a hash-sharded set of packed stores; "
        "'auto' (default) keeps whatever layout the directory already holds",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard the packed result store N ways (hash-prefix routing; "
        "reduces lock contention under concurrent writers)",
    )
    parser.add_argument(
        "--settings",
        choices=("quick", "paper"),
        default="quick",
        help="characterization/time-step resolution (default: quick)",
    )
    parser.add_argument(
        "--serve",
        type=Path,
        default=None,
        metavar="SOCKET",
        help="start the timing server on SOCKET instead of running figures "
        "(shorthand for 'python -m repro.runtime.server start --socket "
        "SOCKET', honouring --cache/--cache-format/--shards/--workers/"
        "--settings)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write a machine-readable timing/cache report",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-figure result summaries"
    )
    parser.add_argument(
        "--sta",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="timing-engine mode: synthetic netlist specs "
        "(chain:inv:64, tree:4:2, dag:w16:d8:s42) instead of figures",
    )
    parser.add_argument(
        "--engine",
        choices=("batched", "sequential", "both", "hybrid"),
        default="batched",
        help="--sta mode: which waveform engine(s) to run; 'both' additionally "
        "asserts <=1e-9 V equivalence; 'hybrid' runs the criticality-adaptive "
        "NLDM+CSM engine against a full-CSM reference (see --required/--top-k) "
        "(default: batched)",
    )
    parser.add_argument(
        "--required",
        type=float,
        default=None,
        metavar="T",
        help="--engine hybrid: required time (seconds) for the slack ranking; "
        "omitted means rank endpoints by latest arrival",
    )
    parser.add_argument(
        "--top-k",
        default="all",
        metavar="K",
        help="--engine hybrid: number of critical endpoints to refine with CSM "
        "per iteration — an integer, 0 (pure NLDM) or 'all' (full CSM, "
        "bitwise-checked against the reference; default: all)",
    )
    parser.add_argument(
        "--tensor",
        choices=("on", "off"),
        default="on",
        help="--sta mode: whole-level structure-of-arrays propagation for the "
        "batched engine; 'off' falls back to per-instance batching (default: on)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="--sta mode: stimulus seed (default: 0)"
    )
    parser.add_argument(
        "--memory-mode",
        choices=("resident", "stream"),
        default="resident",
        help="--sta mode: 'stream' propagates the batched engine with bounded "
        "memory (retired levels spill to --cache and fault back as memmap "
        "views); a resident reference run is repeated for a bitwise "
        "equivalence check",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="--memory-mode stream: hot-level LRU budget in bytes "
        "(default: keep the whole active frontier hot)",
    )
    parser.add_argument(
        "--corners",
        default=None,
        metavar="TT,FF,SS",
        help="--sta mode: comma-separated process corners; characterizes one "
        "library per corner (parallel content-addressed jobs) and reports "
        "per-corner primary-output arrival deltas",
    )
    parser.add_argument(
        "--corner-mode",
        choices=("serial", "batched", "both"),
        default="serial",
        help="--corners path: 'serial' runs one engine per corner, 'batched' "
        "propagates all corners in one MMMC tensor pass, 'both' runs both "
        "and asserts <=1e-9 V per-corner equivalence (default: serial)",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="--sta mode: incremental-STA smoke — cold run, warm no-op repeat "
        "(must integrate zero waveforms), one ECO cell swap (must re-integrate "
        "only the affected cone and match a cold rebuild to 1e-9 V)",
    )
    args = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")

    if args.serve is not None:
        from .server.__main__ import main as server_main

        server_argv = ["start", "--socket", str(args.serve),
                       "--workers", str(max(args.workers, 1)),
                       "--settings", args.settings,
                       "--cache-format", args.cache_format]
        if args.cache is not None:
            server_argv += ["--cache", str(args.cache)]
        if args.shards is not None:
            server_argv += ["--shards", str(args.shards)]
        return server_main(server_argv)

    if args.sta is not None:
        return _run_sta_mode(args)

    _load_figures()
    # 'all' means the paper-figure set; the STA scale sweep and the corner
    # sweep are opt-in (slow, and both have their own --sta modes).
    all_names = [name for name in FIGURES if name not in ("sta", "corners")]
    names = all_names if args.figures == ["all"] else args.figures
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        parser.error(f"unknown figures {unknown}; available: {sorted(FIGURES)}")

    executor = default_executor(args.workers, args.executor)
    cache = (
        open_result_store(args.cache, args.cache_format, shards=args.shards)
        if args.cache is not None
        else None
    )
    context = build_context(args.settings, executor=executor, cache=cache)

    kinds = tuple(dict.fromkeys(k for name in names for k in MODEL_KINDS[name]))
    report: Dict[str, object] = {
        "settings": args.settings,
        "workers": args.workers,
        "executor": executor.describe(),
        "figures": {},
    }

    total_start = time.perf_counter()
    if kinds:
        start = time.perf_counter()
        executed = context.prewarm_characterizations(kinds)
        elapsed = time.perf_counter() - start
        print(
            f"characterization: {len(kinds)} model(s) ready in {elapsed:.3f} s "
            f"({executed} executed, {len(kinds) - executed} from cache)"
        )
        report["characterization"] = {
            "kinds": list(kinds),
            "seconds": round(elapsed, 4),
            "executed": executed,
        }

    for name in names:
        start = time.perf_counter()
        result = FIGURES[name](context)
        elapsed = time.perf_counter() - start
        report["figures"][name] = round(elapsed, 4)
        print(f"{name}: {elapsed:.3f} s")
        if not args.quiet and hasattr(result, "summary"):
            print(result.summary())
    report["total_seconds"] = round(time.perf_counter() - total_start, 4)

    if cache is not None:
        print(f"cache: {cache.stats} ({args.cache})")
        report["cache"] = cache.stats.as_dict()

    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
