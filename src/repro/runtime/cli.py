"""Command-line entry point: run paper-figure sets on the parallel runtime.

Usage::

    python -m repro.runtime.cli --figures fig5 fig9 --workers 4 --cache ~/.repro-cache
    python -m repro.runtime.cli --figures all --workers 8 --executor thread
    python -m repro.runtime.cli --figures fig3 --settings paper --json report.json

The CLI builds one :class:`~repro.experiments.ExperimentContext` wired to the
chosen executor and disk cache, pre-characterizes every model the requested
figures need (as one parallel job set), then runs the figures and reports
per-figure wall-clock plus cache statistics.  A second invocation with the
same ``--cache`` directory skips all characterization jobs — the hits are
logged and counted in the summary.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from .cache import ResultCache
from .executor import default_executor

__all__ = ["main", "FIGURES", "MODEL_KINDS"]

#: Figure name -> callable(context) -> result object with ``summary()``.
FIGURES: Dict[str, object] = {}

#: Figure name -> model kinds it characterizes (prewarmed in parallel).
MODEL_KINDS: Dict[str, tuple] = {
    "fig3": (),
    "fig4": (),
    "fig5": (),
    "fig9": ("mcsm", "mis"),
    "fig10": ("mcsm",),
    "fig11": ("mcsm", "sis"),
    "fig12": ("mcsm",),
}


def _load_figures() -> None:
    """Populate FIGURES lazily so ``--help`` stays fast."""
    if FIGURES:
        return
    from ..experiments import (
        run_fig3,
        run_fig4,
        run_fig5,
        run_fig9,
        run_fig10,
        run_fig11,
        run_fig12,
    )

    FIGURES.update(
        {
            "fig3": lambda ctx: run_fig3(ctx),
            "fig4": lambda ctx: run_fig4(ctx),
            "fig5": lambda ctx: run_fig5(ctx),
            "fig9": lambda ctx: run_fig9(ctx, fanout=1),
            "fig10": lambda ctx: run_fig10(ctx),
            "fig11": lambda ctx: run_fig11(ctx),
            "fig12": lambda ctx: run_fig12(ctx),
        }
    )


def build_context(settings: str, executor=None, cache: Optional[ResultCache] = None):
    """An :class:`ExperimentContext` for ``settings`` ('quick' or 'paper')."""
    from ..characterization import CharacterizationConfig
    from ..experiments import ExperimentContext

    if settings == "quick":
        return ExperimentContext(
            characterization=CharacterizationConfig(io_grid_points=5),
            reference_time_step=4e-12,
            model_time_step=2e-12,
            executor=executor,
            cache=cache,
        )
    if settings == "paper":
        return ExperimentContext(executor=executor, cache=cache)
    raise ValueError(f"unknown settings {settings!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.cli",
        description="Run paper-figure experiment sets on the parallel runtime.",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        default=["all"],
        help="figure names (fig3 fig4 fig5 fig9 fig10 fig11 fig12) or 'all'",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel worker count; 1 means serial execution (default)",
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="pool flavour when --workers > 1 (default: process)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory (created if missing)",
    )
    parser.add_argument(
        "--settings",
        choices=("quick", "paper"),
        default="quick",
        help="characterization/time-step resolution (default: quick)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write a machine-readable timing/cache report",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-figure result summaries"
    )
    args = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")

    _load_figures()
    names = list(FIGURES) if args.figures == ["all"] else args.figures
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        parser.error(f"unknown figures {unknown}; available: {sorted(FIGURES)}")

    executor = default_executor(args.workers, args.executor)
    cache = ResultCache(args.cache) if args.cache is not None else None
    context = build_context(args.settings, executor=executor, cache=cache)

    kinds = tuple(dict.fromkeys(k for name in names for k in MODEL_KINDS[name]))
    report: Dict[str, object] = {
        "settings": args.settings,
        "workers": args.workers,
        "executor": executor.describe(),
        "figures": {},
    }

    total_start = time.perf_counter()
    if kinds:
        start = time.perf_counter()
        executed = context.prewarm_characterizations(kinds)
        elapsed = time.perf_counter() - start
        print(
            f"characterization: {len(kinds)} model(s) ready in {elapsed:.3f} s "
            f"({executed} executed, {len(kinds) - executed} from cache)"
        )
        report["characterization"] = {
            "kinds": list(kinds),
            "seconds": round(elapsed, 4),
            "executed": executed,
        }

    for name in names:
        start = time.perf_counter()
        result = FIGURES[name](context)
        elapsed = time.perf_counter() - start
        report["figures"][name] = round(elapsed, 4)
        print(f"{name}: {elapsed:.3f} s")
        if not args.quiet and hasattr(result, "summary"):
            print(result.summary())
    report["total_seconds"] = round(time.perf_counter() - total_start, 4)

    if cache is not None:
        print(f"cache: {cache.stats} ({args.cache})")
        report["cache"] = cache.stats.as_dict()

    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
