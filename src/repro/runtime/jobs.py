"""The runtime job model: picklable work units with content-addressed keys.

A :class:`Job` wraps any picklable scenario unit — a cell characterization, a
transient bench, an experiment variant — as ``fn(*args, **kwargs)`` plus a
stable *content hash* derived from the job's declared inputs.  Two jobs with
the same hash are guaranteed (by construction of the hash) to compute the same
result, which is what lets the disk cache (:mod:`repro.runtime.cache`) skip
re-execution across processes, sessions and experiments.

Hashes are built from a canonical JSON rendering of the inputs:

* floats use ``repr`` (shortest round-tripping form), so bit-identical inputs
  give identical hashes;
* numpy arrays hash their dtype, shape and raw bytes;
* dataclasses (``Technology``, ``MosfetParams``, ``CharacterizationConfig``,
  stimulus descriptions, ...) hash their class name plus field values;
* cells hash through :func:`cell_fingerprint`, which captures the transistor
  topology (terminals, geometry, device parameters) rather than the Python
  object identity;
* every hash is salted with :data:`CODE_VERSION` — bump it whenever the
  *meaning* of cached results changes (new characterization algorithm, fixed
  solver bug, ...) and all previously cached entries become unreachable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "CODE_VERSION",
    "Job",
    "job",
    "content_hash",
    "cell_fingerprint",
    "contiguous_array",
]


def contiguous_array(array: np.ndarray) -> np.ndarray:
    """A C-contiguous view/copy that preserves 0-d shapes.

    ``np.ascontiguousarray`` promotes 0-d arrays to 1-d, which would make a
    0-d input indistinguishable (in content hashes and stored payloads) from
    its 1-element 1-d counterpart; 0-d arrays are always contiguous, so only
    convert arrays that actually need it.  Shared by the content hasher here
    and the packed store codec (:mod:`repro.runtime.store`).
    """
    return array if array.flags["C_CONTIGUOUS"] else np.ascontiguousarray(array)

#: Salt mixed into every content hash.  Bump on any change that alters what a
#: characterization / simulation job computes for the same inputs; this is the
#: cache's invalidation story (old entries are simply never addressed again).
#: (pr4.1: DC operating-point settle replaced the integration pre-roll, which
#: changes every model-simulation and waveform-propagation result.
#: pr5.1: 0-d arrays now hash with their true shape instead of being promoted
#: to 1-element 1-d by ascontiguousarray, so keys over 0-d inputs moved; NLDM
#: loads are now always built from prewarmed characterized capacitances.)
CODE_VERSION = "pr5.1"


# ----------------------------------------------------------------------
# Canonicalization + hashing
# ----------------------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable tree with stable rendering."""
    # Numpy scalars before the builtin branches: np.float64 subclasses float,
    # and repr() of the subclass ('np.float64(…)') would make hashes depend on
    # the numpy version and never match the equal Python float.
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return {"__float__": repr(float(obj))}
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips exactly (shortest-repr guarantee), so equal bit
        # patterns canonicalize identically and unequal ones never collide.
        return {"__float__": repr(obj)}
    if isinstance(obj, np.ndarray):
        array = contiguous_array(obj)
        return {
            "__ndarray__": {
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "sha256": hashlib.sha256(array.tobytes()).hexdigest(),
            }
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                (str(key), _canonical(value)) for key, value in obj.items()
            )
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__object__": type(obj).__name__,
            "fields": {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    # Objects exposing their own canonical form (e.g. NDTable.to_dict).
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return {"__object__": type(obj).__name__, "fields": _canonical(to_dict())}
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for content hashing; "
        "pass primitives, arrays, dataclasses or objects with to_dict()"
    )


def content_hash(*parts: Any) -> str:
    """Stable hex digest of the given inputs, salted with :data:`CODE_VERSION`."""
    tree = _canonical([CODE_VERSION, list(parts)])
    payload = json.dumps(tree, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cell_fingerprint(cell: Any) -> Dict[str, Any]:
    """Content identity of a cell: topology + geometry + technology.

    Two cells with the same fingerprint characterize identically, regardless
    of how the Python objects were constructed.  The fingerprint covers the
    transistor netlist (terminals, width, length, device parameters), the
    capacitor branches, the pin/node naming and the technology definition
    (which carries the supply voltage and both polarities' parameters).
    """
    devices = [
        {
            "name": device.name,
            "drain": device.drain,
            "gate": device.gate,
            "source": device.source,
            "bulk": device.bulk,
            "width": device.width,
            "length": device.length,
            "params": device.params,
        }
        for device in cell.circuit.mosfets()
    ]
    capacitors = [
        [node_a, node_b, value]
        for node_a, node_b, value in cell.circuit.capacitor_branch_list()
    ]
    return {
        "name": cell.name,
        "inputs": list(cell.inputs),
        "output": cell.output,
        "internal_nodes": list(cell.internal_nodes),
        "drive_strength": cell.drive_strength,
        "devices": devices,
        "capacitors": capacitors,
        "technology": cell.technology,
    }


# ----------------------------------------------------------------------
# The job unit
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One schedulable unit of work.

    Attributes
    ----------
    fn:
        A picklable callable (module-level function or callable class
        instance) computing the result.
    args / kwargs:
        Call arguments; must be picklable for the process executor.
    name:
        Human-readable label used in logs and error messages.
    key:
        Optional content hash (from :func:`content_hash`).  Jobs with a key
        participate in the disk cache; keyless jobs always execute.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    name: str = ""
    key: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            self.name = getattr(self.fn, "__name__", type(self.fn).__name__)

    def run(self) -> Any:
        """Execute the job in the current process."""
        return self.fn(*self.args, **self.kwargs)


def job(
    fn: Callable[..., Any],
    *args: Any,
    name: str = "",
    key_parts: Optional[Tuple[Any, ...]] = None,
    **kwargs: Any,
) -> Job:
    """Convenience constructor: build a :class:`Job`, hashing ``key_parts``.

    When ``key_parts`` is given the job's cache key is
    ``content_hash(fn_qualname, *key_parts)`` — the function identity is mixed
    in so two different computations over the same inputs don't collide.
    """
    key = None
    if key_parts is not None:
        fn_id = getattr(fn, "__qualname__", type(fn).__name__)
        key = content_hash(fn_id, *key_parts)
    return Job(fn=fn, args=args, kwargs=kwargs, name=name, key=key)
