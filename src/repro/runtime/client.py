"""Synchronous client for the timing server.

:class:`TimingClient` speaks both server transports — the newline-delimited
JSON unix socket (default, lowest latency) and the HTTP endpoint — behind
one call-per-request API.  Connections are opened per request, which keeps
the client trivially thread-safe: the soak benchmark drives one client from
many threads, and every request still maps to one framed exchange.

    from repro.runtime.client import TimingClient

    client = TimingClient(socket_path="/tmp/repro-timing.sock")
    client.wait_until_ready()
    opened = client.open_session({"generate": "dag:w64:d4:s7"})
    result = client.timing(opened["session"], engine="csm", seed=0)
    client.eco(opened["session"], [{"kind": "auto_swap"}])

Error frames (``ok: false``) raise :class:`TimingServerError` carrying the
server's error code, so callers never mistake a refusal for a result.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from .server.protocol import decode_waveform, encode_message

__all__ = ["TimingClient", "TimingServerError"]


class TimingServerError(RuntimeError):
    """An ``ok: false`` response from the server."""

    def __init__(self, message: str, code: str = "error"):
        super().__init__(message)
        self.code = code


class TimingClient:
    """One timing-server endpoint (unix socket and/or HTTP address)."""

    def __init__(
        self,
        socket_path: Optional[Path] = None,
        http_address: Optional[str] = None,
        timeout: float = 300.0,
    ):
        if socket_path is None and http_address is None:
            raise ValueError("need a socket_path or an http_address")
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.http_address = http_address  # "host:port"
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One request/response exchange; raises on ``ok: false``."""
        body = {"op": op, **params}
        if self.socket_path is not None:
            response = self._request_socket(body)
        else:
            response = self._request_http(body)
        if not response.get("ok"):
            raise TimingServerError(
                response.get("error", "unknown server error"),
                response.get("code", "error"),
            )
        return response

    def _request_socket(self, body: Dict[str, Any]) -> Dict[str, Any]:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
            conn.settimeout(self.timeout)
            conn.connect(str(self.socket_path))
            conn.sendall(encode_message(body))
            chunks: List[bytes] = []
            while True:
                chunk = conn.recv(1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
            raw = b"".join(chunks)
        if not raw:
            raise TimingServerError("server closed the connection", "transport")
        return json.loads(raw)

    def _request_http(self, body: Dict[str, Any]) -> Dict[str, Any]:
        host, _, port = self.http_address.partition(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=self.timeout)
        try:
            conn.request(
                "POST",
                "/api",
                body=json.dumps(body),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return json.loads(response.read())
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.1) -> None:
        """Poll ``ping`` until the daemon answers (used right after start)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                self.ping()
                return
            except (OSError, TimingServerError, json.JSONDecodeError) as exc:
                last_error = exc
                time.sleep(interval)
        raise TimeoutError(f"timing server not ready after {timeout}s: {last_error}")

    def status(self) -> Dict[str, Any]:
        return self.request("status")

    def open_session(
        self, design: Mapping[str, Any], session_name: Optional[str] = None
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"design": dict(design)}
        if session_name is not None:
            params["session_name"] = session_name
        return self.request("open_session", **params)

    def timing(
        self,
        session: str,
        memory_mode: Optional[str] = None,
        memory_budget_bytes: Optional[int] = None,
        required: Optional[Any] = None,
        top_k: Optional[Any] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """One timing request.  ``memory_mode="stream"`` (optionally with a
        ``memory_budget_bytes`` hot-set cap) asks the server to propagate
        with the bounded-memory streaming engine; spill/fault counts come
        back in the response ``stats``.  With ``engine="hybrid"``,
        ``required`` (scalar or per-net mapping) and ``top_k`` (int or
        ``"all"``) tune the criticality-adaptive refinement; the response
        adds per-net ``exact`` flags, ``csm_fraction`` and per-iteration
        refinement stats."""
        if memory_mode is not None:
            params["memory_mode"] = memory_mode
        if memory_budget_bytes is not None:
            params["memory_budget_bytes"] = memory_budget_bytes
        if required is not None:
            params["required"] = required
        if top_k is not None:
            params["top_k"] = top_k
        return self.request("timing", session=session, **params)

    def eco(self, session: str, edits: List[Mapping[str, Any]]) -> Dict[str, Any]:
        return self.request("eco", session=session, edits=[dict(e) for e in edits])

    def close_session(self, session: str) -> Dict[str, Any]:
        return self.request("close_session", session=session)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    @staticmethod
    def waveforms_of(response: Mapping[str, Any]) -> Dict[str, Any]:
        """Decode a ``return_waveforms=True`` response into numpy arrays
        (``net -> (times, values)``)."""
        return {
            net: decode_waveform(payload)
            for net, payload in (response.get("waveforms") or {}).items()
        }

    @staticmethod
    def max_deviation(
        response: Mapping[str, Any], reference: Mapping[str, Any]
    ) -> float:
        """Max |dV| between a response's waveforms and reference ``net ->
        values`` arrays — the client side of the ≤1e-9 V equivalence check."""
        worst = 0.0
        for net, payload in (response.get("waveforms") or {}).items():
            if net not in reference:
                continue
            _, values = decode_waveform(payload)
            worst = max(worst, float(np.abs(values - reference[net]).max()))
        return worst
