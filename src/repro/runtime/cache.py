"""Content-addressed disk cache for characterization and simulation results.

Layout on disk: one ``.npz`` file per entry under two-level fan-out
directories, addressed purely by the job's content hash::

    <cache_dir>/
        ab/
            ab3f9c....npz      # numeric payload + JSON manifest
        c4/
            c41d07....npz

Each ``.npz`` holds every numpy array of the payload (``a0``, ``a1``, ...)
plus a ``__manifest__`` entry: a JSON description of the object tree that
references the arrays by name.  The codec round-trips the repo's result
types **bitwise**:

* primitives, lists/tuples/dicts,
* numpy arrays (via the npz container itself),
* :class:`~repro.lut.table.NDTable` (axes + value grid),
* the characterized model dataclasses (``SISCSM``, ``BaselineMISCSM``,
  ``MCSM``) and :class:`~repro.characterization.nldm.NLDMTable`.

Floats embedded in the manifest are rendered with ``repr`` (Python's
shortest round-tripping form), so a cache hit returns exactly the value the
original run produced.

Invalidation: keys embed :data:`repro.runtime.jobs.CODE_VERSION`, so bumping
the salt orphans every stale entry; :meth:`ResultCache.clear` removes them
from disk, and :meth:`ResultCache.evict` drops a single key.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from ..lut.grid import Axis
from ..lut.table import NDTable

__all__ = ["CacheStats", "ResultCache", "encode_payload", "decode_payload"]

#: A ``.tmp-*`` file older than this is a leftover of a crashed writer, not a
#: store in flight — :meth:`ResultCache.sweep_temps` deletes it.
STALE_TEMP_SECONDS = 3600.0

logger = logging.getLogger("repro.runtime")


def _registered_classes() -> Dict[str, Type]:
    """Dataclass result types the codec may store (imported lazily to keep
    :mod:`repro.runtime` free of upward package dependencies)."""
    from ..characterization.nldm import NLDMTable
    from ..csm.base import ModelSimulationResult
    from ..csm.models import MCSM, BaselineMISCSM, SISCSM
    from ..sta.engine import NLDMTimingResult, WaveformTimingResult
    from ..sta.events import TimingEvent
    from ..sta.mmmc import MulticornerNLDMResult, MulticornerTimingResult

    return {
        cls.__name__: cls
        for cls in (
            SISCSM,
            BaselineMISCSM,
            MCSM,
            NLDMTable,
            ModelSimulationResult,
            WaveformTimingResult,
            TimingEvent,
            NLDMTimingResult,
            MulticornerTimingResult,
            MulticornerNLDMResult,
        )
    }


# ----------------------------------------------------------------------
# Payload codec: object tree <-> (manifest JSON, {array_name: ndarray})
# ----------------------------------------------------------------------
def _is_waveform(value: Any) -> bool:
    from ..waveform.waveform import Waveform

    return isinstance(value, Waveform)


def _is_level_tensor(value: Any) -> bool:
    from ..waveform.level_tensor import LevelTensor

    return isinstance(value, LevelTensor)


def _encode(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    # Numpy scalars first: np.float64 subclasses float, and repr() of the
    # subclass ('np.float64(…)') would not round-trip through float().
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return {"t": "float", "v": repr(float(value))}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"t": "float", "v": repr(value)}
    if isinstance(value, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = value
        return {"t": "array", "v": name}
    if isinstance(value, list):
        return {"t": "list", "v": [_encode(item, arrays) for item in value]}
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_encode(item, arrays) for item in value]}
    if isinstance(value, dict):
        items = [[_encode(k, arrays), _encode(v, arrays)] for k, v in value.items()]
        return {"t": "dict", "v": items}
    if isinstance(value, NDTable):
        return {
            "t": "ndtable",
            "name": value.name,
            "axes": [[axis.name, list(axis.points)] for axis in value.axes],
            "values": _encode(value.values, arrays),
        }
    if _is_waveform(value):
        return {
            "t": "waveform",
            "name": value.name,
            "times": _encode(value.times, arrays),
            "values": _encode(value.values, arrays),
        }
    if _is_level_tensor(value):
        # The value tensor dominates the payload; on the packed store it
        # decodes back as a single zero-copy memmap view per level.
        return {
            "t": "leveltensor",
            "names": list(value.names),
            "values": _encode(value.values, arrays),
            "t0": _encode(value.t0, arrays),
            "dt": _encode(value.dt, arrays),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls_name = type(value).__name__
        if cls_name not in _registered_classes():
            raise TypeError(
                f"dataclass {cls_name!r} is not registered with the result cache"
            )
        return {
            "t": "object",
            "cls": cls_name,
            "fields": {
                f.name: _encode(getattr(value, f.name), arrays)
                for f in dataclasses.fields(value)
            },
        }
    raise TypeError(f"cannot cache values of type {type(value).__name__!r}")


def _decode(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if node is None or isinstance(node, (bool, int, str)):
        return node
    if isinstance(node, list):  # only produced inside typed containers
        return [_decode(item, arrays) for item in node]
    tag = node["t"]
    if tag == "float":
        return float(node["v"])
    if tag == "array":
        return arrays[node["v"]]
    if tag == "list":
        return [_decode(item, arrays) for item in node["v"]]
    if tag == "tuple":
        return tuple(_decode(item, arrays) for item in node["v"])
    if tag == "dict":
        return {_decode(k, arrays): _decode(v, arrays) for k, v in node["v"]}
    if tag == "ndtable":
        axes = [
            Axis(name=name, points=tuple(float(p) for p in points))
            for name, points in node["axes"]
        ]
        return NDTable(axes, _decode(node["values"], arrays), name=node["name"])
    if tag == "waveform":
        from ..waveform.waveform import Waveform

        return Waveform(
            _decode(node["times"], arrays),
            _decode(node["values"], arrays),
            name=node["name"],
        )
    if tag == "leveltensor":
        from ..waveform.level_tensor import LevelTensor

        return LevelTensor(
            node["names"],
            _decode(node["values"], arrays),
            _decode(node["t0"], arrays),
            _decode(node["dt"], arrays),
        )
    if tag == "object":
        cls = _registered_classes()[node["cls"]]
        fields = {name: _decode(child, arrays) for name, child in node["fields"].items()}
        return cls(**fields)
    raise ValueError(f"unknown cache manifest tag {tag!r}")


def encode_payload(value: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Reduce a cacheable value to ``(manifest, {array_name: ndarray})``.

    The manifest is a JSON-serializable tree referencing the arrays by name;
    :func:`decode_payload` reverses it bitwise.  Shared by every storage
    backend (the per-entry ``.npz`` layout here and the packed single-file
    store in :mod:`repro.runtime.store`).
    """
    arrays: Dict[str, np.ndarray] = {}
    manifest = _encode(value, arrays)
    return manifest, arrays


def decode_payload(manifest: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Rebuild the value encoded by :func:`encode_payload`."""
    return _decode(manifest, arrays)


# ----------------------------------------------------------------------
# The cache itself
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss/store/evict counters for one :class:`ResultCache` instance.

    ``evictions`` counts corrupted or undecodable entries dropped during
    lookup: each also counts as a miss (the caller recomputes and re-stores).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, {self.stores} stores, "
            f"{self.evictions} evicted"
        )


class ResultCache:
    """Content-addressed ``.npz`` store keyed by job content hashes."""

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.sweep_temps()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.npz"

    def _entries(self):
        """Finished entries only — skips '.tmp-*' left by interrupted stores.

        ``Path.glob`` (unlike a shell) matches dotfiles, so without the
        filter a crashed writer's ``.tmp-*.npz`` would count as an entry in
        ``len()`` / ``keys()`` and get returned by :meth:`clear`.
        """
        return (
            path
            for path in self.directory.glob("*/*.npz")
            if not path.name.startswith(".tmp-")
        )

    def sweep_temps(self, max_age_seconds: float = STALE_TEMP_SECONDS) -> int:
        """Delete ``.tmp-*`` files older than ``max_age_seconds``.

        Interrupted :meth:`store` calls (a killed process between the temp
        write and the atomic rename) leave temp files behind; they are never
        addressed again, so they only waste disk.  Recent temps are kept —
        they may belong to a concurrent writer mid-store.  Runs once per
        cache construction; returns the number of files removed.
        """
        cutoff = time.time() - max_age_seconds
        removed = 0
        for path in self.directory.glob("*/.tmp-*.npz"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:  # raced with a concurrent sweep or rename
                continue
        return removed

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for a key; counts the hit or miss."""
        path = self._path(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                manifest = json.loads(str(data["__manifest__"]))
                arrays = {name: data[name] for name in data.files if name != "__manifest__"}
            value = _decode(manifest, arrays)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:  # corrupt/undecodable entry: treat as miss, drop it
            logger.warning("dropping unreadable cache entry %s", path, exc_info=True)
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            self.stats.evictions += 1
            return False, None
        self.stats.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        """Persist a value under its content key (atomic rename)."""
        manifest, arrays = encode_payload(value)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                np.savez_compressed(
                    stream, __manifest__=np.array(json.dumps(manifest)), **arrays
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # ------------------------------------------------------------------
    def evict(self, key: str) -> bool:
        """Remove a single entry; returns whether it existed."""
        path = self._path(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        return removed

    def keys(self) -> List[str]:
        return sorted(path.stem for path in self._entries())
