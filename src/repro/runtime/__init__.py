"""Parallel scenario execution and content-addressed result caching.

This package is the scheduling seam of the reproduction: independent
simulation / characterization units become :class:`~repro.runtime.jobs.Job`
objects with stable content hashes, an executor (serial, thread pool or
process pool) runs any number of them with deterministic result ordering and
per-job error capture, and a :class:`~repro.runtime.cache.ResultCache` makes
sure no characterized cell is ever computed twice — across experiments,
processes or sessions.

Quick tour::

    from repro.runtime import Job, ProcessExecutor, ResultCache, run_jobs

    jobs = [Job(fn=simulate_bench, args=(bench,), key=content_hash(...))
            for bench in benches]
    results = run_jobs(jobs, executor=ProcessExecutor(max_workers=8),
                       cache=ResultCache("~/.repro-cache"))
    values = [r.value for r in results]    # in job order

``python -m repro.runtime.cli --figures fig5 fig9 --workers 4 --cache DIR``
runs whole paper-figure sets through the same machinery, and
``python -m repro.runtime.server start`` turns the stack into a long-lived
multi-session timing/ECO daemon (client API in :mod:`repro.runtime.client`).
"""

from .cache import CacheStats, ResultCache, decode_payload, encode_payload
from .store import (
    PackedStore,
    ShardedPackedStore,
    migrate_npz_cache,
    open_result_store,
)
from .executor import (
    Executor,
    JobError,
    JobResult,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor,
    run_jobs,
)
from .jobs import CODE_VERSION, Job, cell_fingerprint, content_hash, job

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "Executor",
    "Job",
    "JobError",
    "JobResult",
    "PackedStore",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "ShardedPackedStore",
    "decode_payload",
    "encode_payload",
    "migrate_npz_cache",
    "open_result_store",
    "ThreadExecutor",
    "cell_fingerprint",
    "content_hash",
    "default_executor",
    "job",
    "run_jobs",
]
