"""Design/session registry and the transport-free timing service core.

:class:`TimingService` is the whole server minus I/O: it owns the model
library, the shared (usually sharded) result store, the design registry and
the sessions, and exposes one synchronous ``handle(request) -> response``
dispatch that the asyncio daemon calls from its worker pool.  Keeping the
core synchronous and transport-free is what makes it directly testable —
the concurrent-session integration tests drive it with plain threads.

Session model
-------------
Designs are registered once per content fingerprint
(:func:`repro.sta.netlist.netlist_fingerprint`); each session gets a
*private* :class:`~repro.sta.netlist.GateNetlist` copy plus lazily created
per-session engines.  ECO edits mutate only the session's copy — two
sessions editing "the same" design never conflict structurally, while the
content-addressed propagation keys still share every identical sub-cone
between them through the common store.  A per-session lock serializes that
session's requests; different sessions run concurrently, bounded by the
daemon's worker pool.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ...cells import default_library
from ...csm.base import SimulationOptions
from ...exceptions import TimingError
from ...sta.engine import CornerSet, CSMEngine, NLDMEngine, TimingEngine
from ...sta.events import TimingEvent
from ...sta.hybrid import HybridEngine
from ...sta.generate import (
    default_time_window,
    generate_netlist,
    primary_input_events,
    primary_input_waveforms,
)
from ...sta.models import TimingModelLibrary
from ...sta.netlist import (
    GateNetlist,
    eco_swap_candidate,
    netlist_fingerprint,
)
from ..jobs import content_hash
from .protocol import PROTOCOL_VERSION, ServerError, encode_waveform, error_response, ok_response
from .scheduler import SingleFlight, SingleFlightStore

__all__ = ["DesignRecord", "Session", "TimingService"]


@dataclass
class DesignRecord:
    """One registered design revision, addressed by content fingerprint."""

    design_id: str
    name: str
    gates: int
    payload: Dict[str, Any]  # canonical GateNetlist.to_dict()
    registered_at: float
    sessions_opened: int = 0


@dataclass
class Session:
    """One client's private view of a design: mutable netlist + engines."""

    session_id: str
    design_id: str
    netlist: GateNetlist
    created_at: float
    lock: threading.RLock = field(default_factory=threading.RLock)
    engines: Dict[str, TimingEngine] = field(default_factory=dict)
    requests: int = 0
    eco_edits: int = 0
    #: Last time a request addressed this session (the idle-reaper clock;
    #: same ``time.time()`` timeline the store's age policies ride).
    last_used: float = 0.0


class TimingService:
    """The synchronous server core: registry + scheduling + engines.

    Parameters
    ----------
    models:
        A prebuilt :class:`TimingModelLibrary` (tests share one to avoid
        re-characterizing); built from ``library``/``config`` otherwise.
    store:
        The shared result store (typically a
        :class:`~repro.runtime.store.ShardedPackedStore`).  Wrapped in a
        :class:`SingleFlightStore` so overlapping in-flight keys dedupe
        across sessions.  ``None`` runs uncached.
    options:
        CSM simulation options; defaults to the quick profile (2 ps step)
        matching the CLI's ``--settings quick``.
    session_ttl_s:
        Idle-session time-to-live in seconds.  Sessions untouched for longer
        than this are reaped at the next request dispatch (``status`` reports
        the count); ``None`` (the default) keeps sessions forever.
    """

    def __init__(
        self,
        models: Optional[TimingModelLibrary] = None,
        library=None,
        config=None,
        options: Optional[SimulationOptions] = None,
        store=None,
        dedupe_wait_timeout: float = 60.0,
        session_ttl_s: Optional[float] = None,
    ):
        if models is not None:
            self.models = models
            self.library = models.library
        else:
            self.library = library if library is not None else default_library()
            kwargs = {"library": self.library}
            if config is not None:
                kwargs["config"] = config
            self.models = TimingModelLibrary(**kwargs)
        self.store = (
            SingleFlightStore(store, wait_timeout=dedupe_wait_timeout)
            if store is not None
            else None
        )
        if self.models.cache is None and self.store is not None:
            self.models.cache = self.store
        self.options = options or SimulationOptions(time_step=2e-12)
        self.session_ttl_s = session_ttl_s
        self.flight = SingleFlight()
        self.started_at = time.time()
        self._lock = threading.RLock()
        self._designs: Dict[str, DesignRecord] = {}
        self._sessions: Dict[str, Session] = {}
        self._session_counter = itertools.count(1)
        self._corner_sets: Dict[Tuple[str, ...], CornerSet] = {}
        self.requests_total = 0
        self.timing_requests = 0
        self.eco_requests = 0
        self.errors = 0
        self.sessions_reaped = 0
        self._ops = {
            "ping": self.ping,
            "status": self.status,
            "open_session": self.open_session,
            "close_session": self.close_session,
            "timing": self.timing,
            "eco": self.eco,
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """One request in, one response out; failures become error frames."""
        self._reap_idle()
        op = request.get("op")
        handler = self._ops.get(op)
        with self._lock:
            self.requests_total += 1
        if handler is None:
            with self._lock:
                self.errors += 1
            return error_response(f"unknown op {op!r}", "bad-request")
        params = {key: value for key, value in request.items() if key != "op"}
        try:
            response = ok_response(**handler(**params))
            # Touch the session again on completion so a request that
            # computes longer than the TTL does not leave its own session
            # instantly reapable.
            self._touch(request.get("session"))
            return response
        except ServerError as exc:
            with self._lock:
                self.errors += 1
            return error_response(str(exc), exc.code)
        except (TimingError, KeyError, TypeError, ValueError) as exc:
            with self._lock:
                self.errors += 1
            return error_response(f"{type(exc).__name__}: {exc}", "bad-request")
        except Exception as exc:  # pragma: no cover - defensive
            with self._lock:
                self.errors += 1
            return error_response(f"{type(exc).__name__}: {exc}", "internal")

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return {"pong": True, "pid": os.getpid(), "protocol": PROTOCOL_VERSION}

    def open_session(
        self, design: Mapping[str, Any], session_name: Optional[str] = None
    ) -> Dict[str, Any]:
        record = self._resolve_design(design)
        with self._lock:
            number = next(self._session_counter)
            session_id = session_name or f"s{number:04d}"
            if session_id in self._sessions:
                raise ServerError(
                    f"session {session_id!r} already open", "conflict"
                )
            netlist = GateNetlist.from_dict(self.library, record.payload)
            now = time.time()
            session = Session(
                session_id=session_id,
                design_id=record.design_id,
                netlist=netlist,
                created_at=now,
                last_used=now,
            )
            self._sessions[session_id] = session
            record.sessions_opened += 1
        return {
            "session": session_id,
            "design": record.design_id,
            "gates": record.gates,
            "name": record.name,
        }

    def close_session(self, session: str) -> Dict[str, Any]:
        with self._lock:
            record = self._sessions.pop(session, None)
        if record is None:
            raise ServerError(f"no such session {session!r}", "not-found")
        return {"closed": session, "requests": record.requests}

    def timing(
        self,
        session: str,
        engine: str = "csm",
        seed: int = 0,
        t_stop: Optional[float] = None,
        events: Optional[Mapping[str, Any]] = None,
        nets: Optional[List[str]] = None,
        return_waveforms: bool = False,
        corners: Optional[List[str]] = None,
        memory_mode: str = "resident",
        memory_budget_bytes: Optional[int] = None,
        required: Optional[Any] = None,
        top_k: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """One timing run, single-flighted across sessions by content key.

        ``corners`` selects the batched MMMC path: every named corner is
        propagated in one levelized pass and the response carries per-corner
        arrivals plus a cross-corner worst merge.  ``memory_mode="stream"``
        propagates with the bounded-memory streaming engine (spilling retired
        levels to the server's store); spill/fault counts show up in the
        response stats and the session's ``status`` entry.
        ``engine="hybrid"`` runs the criticality-adaptive NLDM+CSM engine;
        ``required`` (scalar or per-net mapping) and ``top_k`` (int or
        ``"all"``) tune its slack ranking, and the response adds per-net
        exactness flags plus per-iteration refinement stats.
        """
        if memory_mode not in ("resident", "stream"):
            raise ServerError(
                f"unknown memory_mode {memory_mode!r} (use 'resident' or 'stream')",
                "bad-request",
            )
        if (required is not None or top_k is not None) and engine != "hybrid":
            raise ServerError(
                "'required'/'top_k' only apply to engine='hybrid'",
                "bad-request",
            )
        if engine == "hybrid":
            if corners:
                raise ServerError(
                    "engine='hybrid' is single-corner; submit corners one at "
                    "a time",
                    "bad-request",
                )
            if memory_mode == "stream":
                raise ServerError(
                    "engine='hybrid' does not support memory_mode='stream'",
                    "bad-request",
                )
        if memory_mode == "stream":
            if corners:
                raise ServerError(
                    "memory_mode='stream' does not support multi-corner "
                    "requests; submit corners one at a time",
                    "bad-request",
                )
            if self.store is None:
                raise ServerError(
                    "memory_mode='stream' needs a server store (start the "
                    "server with --cache)",
                    "bad-request",
                )
        record = self._session(session)
        start = time.perf_counter()
        corner_names = (
            tuple(str(name).strip().upper() for name in corners) if corners else None
        )
        with self._lock:
            self.timing_requests += 1
        with record.lock:
            record.requests += 1
            design_digest = content_hash(
                "server-netlist", netlist_fingerprint(record.netlist)
            )
            revision = record.netlist.revision
        request_key = content_hash(
            "server-timing",
            engine,
            design_digest,
            seed,
            t_stop,
            sorted(events.items()) if events else None,
            sorted(nets) if nets else None,
            bool(return_waveforms),
            list(corner_names) if corner_names else None,
            self._settings_token(),
            memory_mode,
            memory_budget_bytes,
            sorted(required.items()) if isinstance(required, Mapping) else required,
            top_k,
        )

        def compute() -> Dict[str, Any]:
            with record.lock:
                return self._timing_locked(
                    record,
                    engine,
                    seed,
                    t_stop,
                    events,
                    nets,
                    return_waveforms,
                    corner_names,
                    memory_mode,
                    memory_budget_bytes,
                    required,
                    top_k,
                )

        payload, coalesced = self.flight.execute(request_key, compute)
        response = dict(payload)
        response["coalesced"] = coalesced
        response["revision"] = revision
        response["design_fingerprint"] = design_digest
        response["latency_ms"] = (time.perf_counter() - start) * 1e3
        return response

    def eco(self, session: str, edits: List[Mapping[str, Any]]) -> Dict[str, Any]:
        """Apply ECO edits to the session's private netlist copy."""
        record = self._session(session)
        with self._lock:
            self.eco_requests += 1
        applied: List[Dict[str, Any]] = []
        with record.lock:
            record.requests += 1
            # Every edit kind reports the same thing: the size of the union
            # of the pre- and post-edit affected regions (what an incremental
            # re-timing may re-integrate).  ``swap_cell``/``auto_swap`` used
            # to report only the pre-swap region, diverging from
            # ``rewire_pin``'s before|after union.
            for edit in edits:
                kind = edit.get("kind")
                if kind == "swap_cell":
                    before = record.netlist.affected_region(edit["instance"])
                    previous = record.netlist.instances[edit["instance"]].cell_name
                    record.netlist.swap_cell(edit["instance"], edit["cell"])
                    after = record.netlist.affected_region(edit["instance"])
                    applied.append(
                        {
                            "kind": kind,
                            "instance": edit["instance"],
                            "cell": edit["cell"],
                            "swapped_from": previous,
                            "affected": len(set(before) | set(after)),
                        }
                    )
                elif kind == "rewire_pin":
                    before = record.netlist.affected_region(edit["instance"])
                    record.netlist.rewire_pin(
                        edit["instance"], edit["pin"], edit["net"]
                    )
                    after = record.netlist.affected_region(edit["instance"])
                    applied.append(
                        {
                            "kind": kind,
                            "instance": edit["instance"],
                            "pin": edit["pin"],
                            "net": edit["net"],
                            "affected": len(set(before) | set(after)),
                        }
                    )
                elif kind == "auto_swap":
                    candidate = eco_swap_candidate(record.netlist)
                    if candidate is None:
                        raise ServerError(
                            "no pin-compatible swap candidate in design",
                            "not-found",
                        )
                    _, instance_name, partner = candidate
                    before = record.netlist.affected_region(instance_name)
                    previous = record.netlist.instances[instance_name].cell_name
                    record.netlist.swap_cell(instance_name, partner)
                    after = record.netlist.affected_region(instance_name)
                    applied.append(
                        {
                            "kind": "swap_cell",
                            "instance": instance_name,
                            "cell": partner,
                            "swapped_from": previous,
                            "affected": len(set(before) | set(after)),
                        }
                    )
                else:
                    raise ServerError(f"unknown edit kind {kind!r}", "bad-request")
            record.eco_edits += len(applied)
            return {
                "applied": applied,
                "revision": record.netlist.revision,
                "design_fingerprint": content_hash(
                    "server-netlist", netlist_fingerprint(record.netlist)
                ),
            }

    def status(self) -> Dict[str, Any]:
        with self._lock:
            designs = {
                design_id: {
                    "name": record.name,
                    "gates": record.gates,
                    "sessions_opened": record.sessions_opened,
                }
                for design_id, record in self._designs.items()
            }
            sessions = {}
            for session_id, record in self._sessions.items():
                sessions[session_id] = {
                    "design": record.design_id,
                    "revision": record.netlist.revision,
                    "requests": record.requests,
                    "eco_edits": record.eco_edits,
                    # Streaming-mode accounting, summed across the session's
                    # engines (always present; zero for resident-only use).
                    "spills": sum(
                        engine.total_stats.get("spills", 0)
                        for engine in record.engines.values()
                    ),
                    "faults": sum(
                        engine.total_stats.get("faults", 0)
                        for engine in record.engines.values()
                    ),
                    "engines": {
                        kind: engine.stats_summary()
                        for kind, engine in record.engines.items()
                    },
                }
            counters = {
                "requests_total": self.requests_total,
                "timing_requests": self.timing_requests,
                "eco_requests": self.eco_requests,
                "errors": self.errors,
                "sessions_reaped": self.sessions_reaped,
            }
        store_report = None
        dedupe = None
        if self.store is not None:
            inner = self.store.inner
            store_report = inner.report() if hasattr(inner, "report") else None
            dedupe = self.store.dedupe_stats()
        return {
            "uptime_s": time.time() - self.started_at,
            "protocol": PROTOCOL_VERSION,
            "session_ttl_s": self.session_ttl_s,
            "designs": designs,
            "sessions": sessions,
            "counters": counters,
            "single_flight": self.flight.stats(),
            "store_dedupe": dedupe,
            "store": store_report,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _touch(self, session_id: Any) -> None:
        """Refresh a session's idle clock (no-op for unknown/absent ids)."""
        if not isinstance(session_id, str):
            return
        with self._lock:
            record = self._sessions.get(session_id)
            if record is not None:
                record.last_used = time.time()

    def _session(self, session_id: str) -> Session:
        with self._lock:
            record = self._sessions.get(session_id)
            if record is not None:
                record.last_used = time.time()
        if record is None:
            raise ServerError(f"no such session {session_id!r}", "not-found")
        return record

    def _reap_idle(self) -> int:
        """Drop sessions idle past :attr:`session_ttl_s` (no-op when unset).

        Runs at every request dispatch, so the reaper needs no timer thread;
        a request already holding its :class:`Session` object completes
        normally even if the session is reaped underneath it (only the
        registry entry goes away).  Returns the number of sessions reaped.
        """
        ttl = self.session_ttl_s
        if ttl is None:
            return 0
        cutoff = time.time() - ttl
        reaped = 0
        with self._lock:
            for session_id in [
                session_id
                for session_id, record in self._sessions.items()
                if record.last_used < cutoff
            ]:
                del self._sessions[session_id]
                reaped += 1
            self.sessions_reaped += reaped
        return reaped

    def _resolve_design(self, design: Mapping[str, Any]) -> DesignRecord:
        if "generate" in design:
            netlist = generate_netlist(self.library, str(design["generate"]))
        elif "netlist" in design:
            netlist = GateNetlist.from_dict(self.library, design["netlist"])
        else:
            raise ServerError(
                "design must carry 'generate' (a spec string) or 'netlist'",
                "bad-request",
            )
        netlist.validate()
        design_id = content_hash("server-design", netlist_fingerprint(netlist))
        with self._lock:
            record = self._designs.get(design_id)
            if record is None:
                record = DesignRecord(
                    design_id=design_id,
                    name=netlist.name,
                    gates=len(netlist.instances),
                    payload=netlist.to_dict(),
                    registered_at=time.time(),
                )
                self._designs[design_id] = record
        return record

    def _settings_token(self) -> str:
        return content_hash(
            "server-settings",
            self.options,
            self.models.config,
            self.models.use_internal_node,
        )

    def _corner_set(self, corner_names: Tuple[str, ...]) -> CornerSet:
        """The service-wide corner set for these names (built once; corner
        libraries characterize through the shared store)."""
        with self._lock:
            corner_set = self._corner_sets.get(corner_names)
        if corner_set is None:
            corner_set = CornerSet.from_names(
                list(corner_names),
                technology=self.library.technology,
                config=self.models.config,
                cache=self.store,
                use_internal_node=self.models.use_internal_node,
            )
            with self._lock:
                corner_set = self._corner_sets.setdefault(corner_names, corner_set)
        return corner_set

    def _engine(
        self,
        record: Session,
        kind: str,
        corner_names: Optional[Tuple[str, ...]] = None,
        memory_mode: str = "resident",
        memory_budget_bytes: Optional[int] = None,
    ) -> TimingEngine:
        """The session's engine of this kind (created lazily, rebound on use).

        Multi-corner engines key separately per corner list (``"csm@TT,FF"``)
        so a session can interleave single- and multi-corner requests without
        rebuilding engines; streaming engines key separately per budget
        (``"csm#stream:33554432"``) for the same reason.  Must hold the
        session lock.
        """
        engine_key = kind if not corner_names else f"{kind}@{','.join(corner_names)}"
        if memory_mode == "stream":
            engine_key += f"#stream:{memory_budget_bytes or 0}"
        engine = record.engines.get(engine_key)
        if engine is None:
            corner_set = self._corner_set(corner_names) if corner_names else None
            if kind == "csm":
                engine = CSMEngine(
                    record.netlist,
                    self.models,
                    options=self.options,
                    cache=self.store,
                    corners=corner_set,
                    memory_mode=memory_mode,
                    memory_budget_bytes=memory_budget_bytes,
                )
            elif kind == "nldm":
                engine = NLDMEngine(
                    record.netlist,
                    self.models,
                    cache=self.store,
                    corners=corner_set,
                    memory_mode=memory_mode,
                    memory_budget_bytes=memory_budget_bytes,
                )
            elif kind == "hybrid":
                engine = HybridEngine(
                    record.netlist,
                    self.models,
                    options=self.options,
                    cache=self.store,
                    corners=corner_set,
                    memory_mode=memory_mode,
                    memory_budget_bytes=memory_budget_bytes,
                )
            else:
                raise ServerError(
                    f"unknown engine kind {kind!r} (use 'csm', 'nldm' or 'hybrid')",
                    "bad-request",
                )
            record.engines[engine_key] = engine
        engine.rebind(record.netlist)
        return engine

    def _timing_locked(
        self,
        record: Session,
        engine_kind: str,
        seed: int,
        t_stop: Optional[float],
        events: Optional[Mapping[str, Any]],
        nets: Optional[List[str]],
        return_waveforms: bool,
        corner_names: Optional[Tuple[str, ...]] = None,
        memory_mode: str = "resident",
        memory_budget_bytes: Optional[int] = None,
        required: Optional[Any] = None,
        top_k: Optional[Any] = None,
    ) -> Dict[str, Any]:
        engine = self._engine(
            record, engine_kind, corner_names, memory_mode, memory_budget_bytes
        )
        netlist = record.netlist
        report_nets = list(nets) if nets else list(netlist.primary_outputs)
        if corner_names:
            return self._timing_multicorner(
                engine, engine_kind, netlist, report_nets, seed, t_stop, events
            )
        if engine_kind == "hybrid":
            window = float(t_stop) if t_stop else default_time_window(netlist)
            waveforms = primary_input_waveforms(netlist, t_stop=window, seed=int(seed))
            run_kwargs: Dict[str, Any] = {}
            if required is not None:
                run_kwargs["required"] = required
            if top_k is not None:
                run_kwargs["top_k"] = top_k
            result = engine.run(waveforms, t_stop=window, **run_kwargs)
            arrivals = {}
            exact = {}
            for net in report_nets:
                try:
                    arrivals[net] = float(result.arrival(net))
                except TimingError:
                    arrivals[net] = None  # stable or unpropagated
                exact[net] = result.is_exact(net)
            payload: Dict[str, Any] = {
                "engine": "hybrid",
                "arrivals": arrivals,
                "exact": exact,
                "slacks": {
                    net: (list(entry) if entry is not None else None)
                    for net, entry in result.endpoint_slacks.items()
                },
                "csm_fraction": result.csm_fraction,
                "iterations": result.iterations,
                "t_stop": window,
                "stats": result.stats,
            }
            if return_waveforms:
                payload["waveforms"] = {
                    net: encode_waveform(
                        result.waveforms[net].times, result.waveforms[net].values
                    )
                    for net in report_nets
                    if net in result.waveforms
                }
            return payload
        if engine_kind == "nldm":
            if events:
                input_events = {
                    net: TimingEvent(
                        net=net,
                        arrival=float(fields["arrival"]),
                        slew=float(fields["slew"]),
                        rising=bool(fields["rising"]),
                    )
                    for net, fields in events.items()
                }
            else:
                input_events = primary_input_events(netlist, seed=int(seed))
            result = engine.run(input_events)
            arrivals = {}
            slews = {}
            for net in report_nets:
                event = result.events.get(net)
                arrivals[net] = event.arrival if event else None
                slews[net] = event.slew if event else None
            payload: Dict[str, Any] = {
                "engine": "nldm",
                "arrivals": arrivals,
                "slews": slews,
                "stats": result.stats
                if isinstance(result.stats, dict)
                else result.stats.as_dict(),
            }
            return payload

        window = float(t_stop) if t_stop else default_time_window(netlist)
        waveforms = primary_input_waveforms(netlist, t_stop=window, seed=int(seed))
        result = engine.run(waveforms, t_stop=window)
        arrivals = {}
        for net in report_nets:
            try:
                arrivals[net] = float(result.arrival(net))
            except TimingError:
                arrivals[net] = None  # never crosses the threshold
        payload = {
            "engine": "csm",
            "arrivals": arrivals,
            "t_stop": window,
            "stats": result.stats
            if isinstance(result.stats, dict)
            else result.stats.as_dict(),
        }
        if return_waveforms:
            payload["waveforms"] = {
                net: encode_waveform(
                    result.waveforms[net].times, result.waveforms[net].values
                )
                for net in report_nets
                if net in result.waveforms
            }
        return payload

    def _timing_multicorner(
        self,
        engine: TimingEngine,
        engine_kind: str,
        netlist: GateNetlist,
        report_nets: List[str],
        seed: int,
        t_stop: Optional[float],
        events: Optional[Mapping[str, Any]],
    ) -> Dict[str, Any]:
        """One batched MMMC run: per-corner arrivals + cross-corner worst
        merge (``worst_arrivals[net]`` is ``[corner, arrival]`` or ``None``
        for nets that never switch at any corner)."""
        if engine_kind == "nldm":
            if events:
                input_events = {
                    net: TimingEvent(
                        net=net,
                        arrival=float(fields["arrival"]),
                        slew=float(fields["slew"]),
                        rising=bool(fields["rising"]),
                    )
                    for net, fields in events.items()
                }
            else:
                input_events = primary_input_events(netlist, seed=int(seed))
            result = engine.run(input_events)
            arrivals = {
                name: {
                    net: (
                        result.result(name).events[net].arrival
                        if net in result.result(name).events
                        else None
                    )
                    for net in report_nets
                }
                for name in result.corner_order
            }
            payload: Dict[str, Any] = {"engine": "nldm", "t_stop": None}
        else:
            window = float(t_stop) if t_stop else default_time_window(netlist)
            waveforms = primary_input_waveforms(netlist, t_stop=window, seed=int(seed))
            result = engine.run(waveforms, t_stop=window)
            arrivals = {}
            for name in result.corner_order:
                corner_result = result.result(name)
                corner_arrivals: Dict[str, Optional[float]] = {}
                for net in report_nets:
                    try:
                        corner_arrivals[net] = float(corner_result.arrival(net))
                    except TimingError:
                        corner_arrivals[net] = None
                arrivals[name] = corner_arrivals
            payload = {"engine": "csm", "t_stop": window}
        worst = {
            net: (list(entry) if entry is not None else None)
            for net, entry in result.worst_arrivals(report_nets).items()
        }
        payload.update(
            {
                "corners": list(result.corner_order),
                "arrivals": arrivals,
                "worst_arrivals": worst,
                "stats": result.stats,
            }
        )
        return payload
