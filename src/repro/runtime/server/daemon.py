"""The asyncio front end: unix-socket + HTTP transports over a worker pool.

The event loop only frames and routes; every request body is handed to the
synchronous :class:`~repro.runtime.server.registry.TimingService` on a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` — that pool is the
engine-work limiter the tentpole asks for (``workers=N`` caps concurrent
propagations; excess requests queue in the pool, connections stay
responsive).

Two listeners share one service:

* a unix stream socket speaking newline-delimited JSON (the primary,
  lowest-latency transport — also what the CLI verbs and tests use);
* a minimal HTTP/1.1 endpoint (``GET /status``, ``POST /api`` with a JSON
  request body) for anything that prefers HTTP.  Hand-rolled on asyncio
  streams: no new dependencies, close-after-response semantics.

``run_server()`` blocks until a ``shutdown`` request arrives (the response
is flushed before the loop stops).  Pass a ``ready`` callback to learn the
actually-bound HTTP port (``http_port=0`` picks a free one) — that is how
the in-process test/bench servers synchronize startup.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from .protocol import (
    MAX_MESSAGE_BYTES,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)
from .registry import TimingService

__all__ = ["ServerConfig", "TimingServer", "build_service", "run_server"]

logger = logging.getLogger("repro.runtime.server")


@dataclass
class ServerConfig:
    """Everything ``python -m repro.runtime.server start`` can set."""

    socket_path: Optional[Path] = None
    http_host: str = "127.0.0.1"
    http_port: Optional[int] = None  # None: no HTTP listener; 0: ephemeral
    cache_dir: Optional[Path] = None
    cache_format: str = "auto"
    shards: Optional[int] = None
    workers: int = 2
    settings: str = "quick"
    max_bytes: Optional[int] = None
    max_age_s: Optional[float] = None
    dedupe_wait_timeout: float = 60.0
    #: Idle-session TTL in seconds (None keeps sessions forever); rides the
    #: same wall clock as the store's max-age policy.
    session_ttl_s: Optional[float] = None


def build_service(config: ServerConfig) -> TimingService:
    """A :class:`TimingService` wired per the server config."""
    from ...characterization import CharacterizationConfig
    from ...csm.base import SimulationOptions
    from ..store import open_result_store

    store = None
    if config.cache_dir is not None:
        store = open_result_store(
            config.cache_dir,
            config.cache_format,
            shards=config.shards,
            max_bytes=config.max_bytes,
            max_age_s=config.max_age_s,
        )
    if config.settings == "quick":
        characterization = CharacterizationConfig(io_grid_points=5)
        options = SimulationOptions(time_step=2e-12)
    elif config.settings == "paper":
        characterization = CharacterizationConfig()
        options = SimulationOptions()
    else:
        raise ValueError(f"unknown settings {config.settings!r}")
    return TimingService(
        config=characterization,
        options=options,
        store=store,
        dedupe_wait_timeout=config.dedupe_wait_timeout,
        session_ttl_s=config.session_ttl_s,
    )


class TimingServer:
    """Asyncio transports + worker pool around one :class:`TimingService`."""

    def __init__(self, service: TimingService, config: ServerConfig):
        self.service = service
        self.config = config
        self.pool = ThreadPoolExecutor(
            max_workers=max(1, config.workers), thread_name_prefix="timing-worker"
        )
        self.bound_http_port: Optional[int] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._servers: list = []

    # ------------------------------------------------------------------
    async def serve(self, ready: Optional[Callable[["TimingServer"], None]] = None) -> None:
        """Listen until a ``shutdown`` request; then drain and exit."""
        loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self.config.socket_path is not None:
            socket_path = Path(self.config.socket_path)
            socket_path.parent.mkdir(parents=True, exist_ok=True)
            if socket_path.exists():
                socket_path.unlink()
            unix_server = await asyncio.start_unix_server(
                self._handle_socket, path=str(socket_path), limit=MAX_MESSAGE_BYTES
            )
            self._servers.append(unix_server)
        if self.config.http_port is not None:
            http_server = await asyncio.start_server(
                self._handle_http,
                host=self.config.http_host,
                port=self.config.http_port,
                limit=MAX_MESSAGE_BYTES,
            )
            self.bound_http_port = http_server.sockets[0].getsockname()[1]
            self._servers.append(http_server)
        if not self._servers:
            raise ValueError("server config enables neither socket nor HTTP listener")
        logger.info(
            "timing server up (socket=%s http_port=%s workers=%d pid=%d)",
            self.config.socket_path,
            self.bound_http_port,
            self.config.workers,
            os.getpid(),
        )
        if ready is not None:
            ready(self)
        try:
            await self._shutdown.wait()
        finally:
            for server in self._servers:
                server.close()
            for server in self._servers:
                await server.wait_closed()
            self._servers.clear()
            self.pool.shutdown(wait=True)
            if self.config.socket_path is not None:
                try:
                    Path(self.config.socket_path).unlink()
                except FileNotFoundError:
                    pass
            if self.service.store is not None:
                try:
                    self.service.store.close()
                except Exception:  # pragma: no cover - best-effort flush
                    logger.warning("store close failed", exc_info=True)
            logger.info("timing server stopped")

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one request body; ``shutdown`` short-circuits the pool."""
        if request.get("op") == "shutdown":
            loop = asyncio.get_running_loop()
            # Let the response flush before the listeners come down.
            loop.call_later(0.05, self._shutdown.set)
            return ok_response(stopping=True)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.pool, self.service.handle, request)

    # -- unix socket: newline-delimited JSON, many requests per conn -----
    async def _handle_socket(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_message(line)
                except Exception as exc:
                    writer.write(encode_message(error_response(str(exc), "bad-request")))
                    await writer.drain()
                    continue
                response = await self._dispatch(request)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- HTTP: one request per connection, close after response ----------
    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, response = await self._http_response(reader)
            payload = json.dumps(response, separators=(",", ":")).encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _http_response(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        try:
            method, target, _ = request_line.decode("ascii").split()
        except ValueError:
            return "400 Bad Request", error_response("malformed request line", "bad-request")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if method == "GET" and target in ("/", "/status"):
            return "200 OK", await self._dispatch({"op": "status"})
        if method != "POST":
            return "405 Method Not Allowed", error_response(
                f"{method} not supported (POST /api or GET /status)", "bad-request"
            )
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b"{}"
        try:
            request = json.loads(body)
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
        except ValueError as exc:
            return "400 Bad Request", error_response(str(exc), "bad-request")
        # POST /api/<op> names the op in the path when the body omits it.
        if "op" not in request and target.startswith("/api/"):
            request["op"] = target.rsplit("/", 1)[-1]
        return "200 OK", await self._dispatch(request)


def run_server(
    config: ServerConfig,
    service: Optional[TimingService] = None,
    ready: Optional[Callable[[TimingServer], None]] = None,
) -> None:
    """Build (or adopt) a service and block serving it until shutdown."""
    server = TimingServer(service or build_service(config), config)
    asyncio.run(server.serve(ready=ready))
