"""Timing-as-a-service: a long-lived daemon over the repro timing stack.

The package splits along the tentpole's seams:

* :mod:`~repro.runtime.server.protocol` — JSON-lines / HTTP wire format,
  waveform base64 codec, error envelope;
* :mod:`~repro.runtime.server.scheduler` — request-level
  :class:`SingleFlight` coalescing and the in-flight
  :class:`SingleFlightStore` dedupe wrapper;
* :mod:`~repro.runtime.server.registry` — :class:`TimingService`: designs,
  sessions, per-session engines and ECO edits (transport-agnostic, fully
  testable in-process);
* :mod:`~repro.runtime.server.daemon` — asyncio listeners + worker pool;
* ``python -m repro.runtime.server`` — start/stop/status/submit/eco verbs.

The synchronous client lives one level up in :mod:`repro.runtime.client`.
"""

from .daemon import ServerConfig, TimingServer, build_service, run_server
from .protocol import (
    PROTOCOL_VERSION,
    ServerError,
    decode_waveform,
    encode_waveform,
)
from .registry import DesignRecord, Session, TimingService
from .scheduler import SingleFlight, SingleFlightStore

__all__ = [
    "PROTOCOL_VERSION",
    "DesignRecord",
    "ServerConfig",
    "ServerError",
    "Session",
    "SingleFlight",
    "SingleFlightStore",
    "TimingServer",
    "TimingService",
    "build_service",
    "decode_waveform",
    "encode_waveform",
    "run_server",
]
