"""Wire protocol of the timing server.

Transport framing is deliberately boring: one JSON object per line
(newline-delimited) over a local stream socket, and the same JSON bodies
over ``POST /api`` for the HTTP front end.  Every request carries an ``op``
plus keyword parameters; every response carries ``ok`` plus either the
result fields or ``error``/``code``.

Ops
---
``ping``
    Liveness check; echoes the server pid and protocol version.
``status``
    Server-wide report: uptime, designs, sessions (with per-engine stats),
    store report (shards, eviction policy, lock waits), dedupe counters.
``open_session``
    ``design`` is either ``{"generate": "<spec>"}`` (a
    :func:`repro.sta.generate.generate_netlist` spec string, e.g.
    ``dag:w64:d4:s7``) or ``{"netlist": {...}}`` (the
    :meth:`repro.sta.netlist.GateNetlist.to_dict` layout).  Designs are
    registered once per ``netlist_fingerprint``; every session gets a
    private mutable copy, so concurrent sessions editing "the same" design
    never conflict structurally.
``timing``
    Run an engine (``engine``: ``csm`` | ``nldm``) on the session's current
    netlist with seeded stimuli (``seed``).  Identical concurrent requests
    coalesce across sessions (single-flight).  ``return_waveforms`` adds
    base64 float64 waveforms of the requested ``nets`` (default: primary
    outputs) for exact client-side verification.
``eco``
    Apply ``edits`` — ``{"kind": "swap_cell", ...}``, ``{"kind":
    "rewire_pin", ...}`` or ``{"kind": "auto_swap"}`` — to the session's
    netlist under the session lock.
``close_session`` / ``shutdown``
    Release one session respectively stop the daemon.

Waveform encoding: ``{"t": <b64 float64>, "v": <b64 float64>}`` — the raw
little-endian bytes of the two arrays, small enough for local sockets and
lossless, which is what the ≤1e-9 V rebuild-equivalence checks need.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "ServerError",
    "ok_response",
    "error_response",
    "encode_message",
    "decode_message",
    "encode_waveform",
    "decode_waveform",
    "MAX_MESSAGE_BYTES",
]

PROTOCOL_VERSION = 1

#: StreamReader line limit: netlist payloads and waveform responses are far
#: larger than asyncio's 64 KiB default.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


class ServerError(Exception):
    """A request-level failure reported to the client (not a crash)."""

    def __init__(self, message: str, code: str = "error"):
        super().__init__(message)
        self.code = code


def ok_response(**fields: Any) -> Dict[str, Any]:
    return {"ok": True, **fields}


def error_response(message: str, code: str = "error") -> Dict[str, Any]:
    return {"ok": False, "error": message, "code": code}


def encode_message(payload: Dict[str, Any]) -> bytes:
    """One protocol frame: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ServerError("protocol messages must be JSON objects", "bad-request")
    return message


def _b64(array: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(array, dtype=np.float64).tobytes()
    ).decode("ascii")


def encode_waveform(times: np.ndarray, values: np.ndarray) -> Dict[str, str]:
    return {"t": _b64(times), "v": _b64(values)}


def decode_waveform(payload: Dict[str, str]):
    times = np.frombuffer(base64.b64decode(payload["t"]), dtype=np.float64)
    values = np.frombuffer(base64.b64decode(payload["v"]), dtype=np.float64)
    return times, values
