"""CLI verbs for the timing server: ``python -m repro.runtime.server …``.

Verbs
-----
``start``
    Run the daemon.  Foreground by default (Ctrl-C stops it); ``--daemon``
    forks a detached child, waits until it answers ``ping``, and prints its
    pid — that is what the CI smoke leg uses.
``stop`` / ``status``
    Ask a running daemon to shut down / report.
``submit``
    One-shot timing request: opens (or reuses, via ``--session``) a session
    for ``--design`` and prints the JSON response.
``eco``
    Apply an edit to a session: ``--swap INSTANCE CELL``,
    ``--rewire INSTANCE PIN NET``, or ``--auto-swap``.

Everything prints machine-readable JSON on stdout so scripts and CI can
pipe through ``python -m json.tool`` or parse directly.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..client import TimingClient, TimingServerError
from .daemon import ServerConfig, run_server

DEFAULT_SOCKET = Path("/tmp/repro-timing.sock")


def _client(args: argparse.Namespace) -> TimingClient:
    if getattr(args, "http", None):
        return TimingClient(http_address=args.http)
    return TimingClient(socket_path=args.socket)


def _emit(payload: Dict[str, Any]) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _config_from_args(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        socket_path=Path(args.socket),
        http_host=args.http_host,
        http_port=args.http_port,
        cache_dir=Path(args.cache) if args.cache else None,
        cache_format=args.cache_format,
        shards=args.shards,
        workers=args.workers,
        settings=args.settings,
        max_bytes=args.max_bytes,
        max_age_s=args.max_age_s,
        session_ttl_s=args.session_ttl_s,
    )


def cmd_start(args: argparse.Namespace) -> int:
    if args.daemon:
        child_argv = [
            sys.executable,
            "-m",
            "repro.runtime.server",
            "start",
            "--socket",
            str(args.socket),
            "--workers",
            str(args.workers),
            "--settings",
            args.settings,
            "--cache-format",
            args.cache_format,
        ]
        if args.http_port is not None:
            child_argv += ["--http-port", str(args.http_port), "--http-host", args.http_host]
        if args.cache:
            child_argv += ["--cache", str(args.cache)]
        if args.shards is not None:
            child_argv += ["--shards", str(args.shards)]
        if args.max_bytes is not None:
            child_argv += ["--max-bytes", str(args.max_bytes)]
        if args.max_age_s is not None:
            child_argv += ["--max-age-s", str(args.max_age_s)]
        if args.session_ttl_s is not None:
            child_argv += ["--session-ttl-s", str(args.session_ttl_s)]
        log = open(args.log, "ab") if args.log else subprocess.DEVNULL
        try:
            child = subprocess.Popen(
                child_argv,
                stdout=log,
                stderr=log,
                stdin=subprocess.DEVNULL,
                start_new_session=True,
                env={**os.environ},
            )
        finally:
            if args.log:
                log.close()
        client = TimingClient(socket_path=args.socket)
        try:
            client.wait_until_ready(timeout=args.ready_timeout)
        except TimeoutError as exc:
            child.terminate()
            _emit({"ok": False, "error": str(exc)})
            return 1
        _emit({"ok": True, "pid": child.pid, "socket": str(args.socket), **client.ping()})
        return 0
    try:
        run_server(_config_from_args(args))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_stop(args: argparse.Namespace) -> int:
    client = _client(args)
    response = client.shutdown()
    # Wait for the socket to actually go away so scripts can restart cleanly.
    deadline = time.monotonic() + args.ready_timeout
    while time.monotonic() < deadline and Path(args.socket).exists():
        time.sleep(0.05)
    _emit(response)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    _emit(_client(args).status())
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    session = args.session
    if session is None:
        opened = client.open_session({"generate": args.design})
        session = opened["session"]
    kwargs: Dict[str, Any] = {}
    if args.corners:
        kwargs["corners"] = [
            name.strip().upper() for name in args.corners.split(",") if name.strip()
        ]
    if args.memory_mode != "resident":
        kwargs["memory_mode"] = args.memory_mode
    if args.memory_budget is not None:
        kwargs["memory_budget_bytes"] = args.memory_budget
    response = client.timing(
        session,
        engine=args.engine,
        seed=args.seed,
        return_waveforms=args.waveforms,
        **kwargs,
    )
    response["session"] = session
    _emit(response)
    return 0


def cmd_eco(args: argparse.Namespace) -> int:
    edits: List[Dict[str, Any]] = []
    if args.swap:
        instance, cell = args.swap
        edits.append({"kind": "swap_cell", "instance": instance, "cell": cell})
    if args.rewire:
        instance, pin, net = args.rewire
        edits.append({"kind": "rewire_pin", "instance": instance, "pin": pin, "net": net})
    if args.auto_swap:
        edits.append({"kind": "auto_swap"})
    if not edits:
        print("eco: need --swap, --rewire or --auto-swap", file=sys.stderr)
        return 2
    _emit(_client(args).eco(args.session, edits))
    return 0


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", type=Path, default=DEFAULT_SOCKET,
                        help=f"unix socket path (default {DEFAULT_SOCKET})")
    parser.add_argument("--http", default=None, metavar="HOST:PORT",
                        help="talk HTTP instead of the unix socket")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.server",
        description="Timing-as-a-service daemon and client verbs.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    start = sub.add_parser("start", help="run the daemon (foreground unless --daemon)")
    start.add_argument("--socket", type=Path, default=DEFAULT_SOCKET)
    start.add_argument("--http-host", default="127.0.0.1")
    start.add_argument("--http-port", type=int, default=None,
                       help="also listen on HTTP (0 picks a free port)")
    start.add_argument("--cache", type=Path, default=None,
                       help="result-store directory (shared across restarts)")
    start.add_argument("--cache-format", default="auto",
                       choices=["auto", "npz", "packed", "sharded"])
    start.add_argument("--shards", type=int, default=None,
                       help="shard the packed store N ways")
    start.add_argument("--workers", type=int, default=2,
                       help="engine worker threads (default 2)")
    start.add_argument("--settings", default="quick", choices=["quick", "paper"])
    start.add_argument("--max-bytes", type=int, default=None,
                       help="store eviction budget in bytes")
    start.add_argument("--max-age-s", type=float, default=None,
                       help="evict entries idle longer than this")
    start.add_argument("--session-ttl-s", type=float, default=None,
                       help="reap sessions idle longer than this "
                       "(default: never; status reports the reaped count)")
    start.add_argument("--daemon", action="store_true",
                       help="detach, wait for readiness, print pid")
    start.add_argument("--log", type=Path, default=None,
                       help="daemon stdout/stderr file (with --daemon)")
    start.add_argument("--ready-timeout", type=float, default=60.0)
    start.set_defaults(func=cmd_start)

    stop = sub.add_parser("stop", help="shut a running daemon down")
    _add_endpoint_args(stop)
    stop.add_argument("--ready-timeout", type=float, default=10.0)
    stop.set_defaults(func=cmd_stop)

    status = sub.add_parser("status", help="print the server report")
    _add_endpoint_args(status)
    status.set_defaults(func=cmd_status)

    submit = sub.add_parser("submit", help="one-shot timing request")
    _add_endpoint_args(submit)
    submit.add_argument("--design", default="dag:w16:d4:s7",
                        help="generate_netlist spec for a fresh session")
    submit.add_argument("--session", default=None,
                        help="reuse an existing session instead of --design")
    submit.add_argument("--engine", default="csm", choices=["csm", "nldm"])
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--waveforms", action="store_true",
                        help="include base64 output waveforms")
    submit.add_argument("--corners", default=None, metavar="TT,FF,SS",
                        help="batched MMMC: propagate all named corners in "
                        "one pass; the response carries per-corner arrivals "
                        "plus the cross-corner worst merge")
    submit.add_argument("--memory-mode", default="resident",
                        choices=["resident", "stream"],
                        help="'stream' propagates with the bounded-memory "
                        "engine: retired levels spill to the server store "
                        "and fault back in as memmap views on demand")
    submit.add_argument("--memory-budget", type=int, default=None,
                        metavar="BYTES",
                        help="streaming hot-level LRU budget in bytes "
                        "(default: unbounded frontier)")
    submit.set_defaults(func=cmd_submit)

    eco = sub.add_parser("eco", help="apply an ECO edit to a session")
    _add_endpoint_args(eco)
    eco.add_argument("--session", required=True)
    eco.add_argument("--swap", nargs=2, metavar=("INSTANCE", "CELL"))
    eco.add_argument("--rewire", nargs=3, metavar=("INSTANCE", "PIN", "NET"))
    eco.add_argument("--auto-swap", action="store_true")
    eco.set_defaults(func=cmd_eco)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except TimingServerError as exc:
        _emit({"ok": False, "error": str(exc), "code": exc.code})
        return 1
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        _emit({"ok": False, "error": f"no server at endpoint: {exc}", "code": "transport"})
        return 1


if __name__ == "__main__":
    sys.exit(main())
