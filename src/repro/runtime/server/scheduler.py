"""Single-flight request coalescing and in-flight store dedupe.

Two layers, both built on the content-addressed key scheme (PR 2/4): when
the *whole request* is identical — same design fingerprint, stimuli and
engine settings — :class:`SingleFlight` lets one "leader" compute while
every concurrent duplicate waits for the leader's result (cross-session
dedupe: the acceptance metric of PR 7).  When requests differ but *overlap*
in sub-cones, :class:`SingleFlightStore` wraps the shared result store so a
second session missing on a key another session is currently computing
waits briefly for the store write instead of redundantly integrating.

Failure semantics are miss-only: a leader that raises propagates its error
to its followers (they asked the same question), and a store claim that is
never resolved times out into an ordinary miss — callers recompute, nobody
blocks forever, and no path can serve a wrong value.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["SingleFlight", "SingleFlightStore"]

#: In-flight claims older than this many seconds are considered abandoned.
_DEFAULT_WAIT_TIMEOUT = 60.0
#: Claim-table size at which stale claims get pruned.
_PRUNE_THRESHOLD = 4096


class SingleFlight:
    """Coalesce concurrent identical computations by content key.

    The first caller of a key becomes the leader and runs ``fn``; callers
    arriving while the leader is still running share its result
    (``coalesced=True``) without recomputing.  A leader's exception
    propagates to its followers.  Results are not memoized past completion
    — persistent reuse is the cache's job; this only removes concurrent
    duplicates.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self.leaders = 0
        self.coalesced = 0

    def execute(self, key: str, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """``(result, coalesced)`` — run ``fn`` once per concurrent key."""
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self.coalesced += 1
                is_leader = False
            else:
                future = Future()
                self._inflight[key] = future
                self.leaders += 1
                is_leader = True
        if not is_leader:
            return future.result(), True
        try:
            result = fn()
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
        future.set_result(result)
        return result, False

    def stats(self) -> Dict[str, int]:
        return {"leaders": self.leaders, "coalesced": self.coalesced}


class SingleFlightStore:
    """A store wrapper that turns concurrent duplicate misses into waits.

    ``lookup`` of a missing key *claims* it; a second ``lookup`` of the same
    key while the claim is open blocks (up to ``wait_timeout`` seconds) for
    the first caller's ``store``, then re-reads — a hit for the waiter, one
    computation total.  If the claimant never stores (crash, error path,
    timeout), waiting degrades to an ordinary miss and the waiter computes
    itself: eviction/failure is always miss-only, never wrong-result.

    Every other attribute (``stats``, ``keys``, ``report`` …) delegates to
    the wrapped store, so engines and the model library accept the wrapper
    anywhere a store goes.
    """

    def __init__(self, inner, wait_timeout: float = _DEFAULT_WAIT_TIMEOUT):
        self.inner = inner
        self.wait_timeout = wait_timeout
        self._lock = threading.Lock()
        #: key -> (event set on store, claim epoch)
        self._claims: Dict[str, Tuple[threading.Event, float]] = {}
        self.dedupe_waits = 0
        self.dedupe_hits = 0

    # -- dedupe-aware read/write paths -----------------------------------
    def lookup(self, key: str) -> Tuple[bool, Any]:
        hit, value = self.inner.lookup(key)
        if hit:
            return True, value
        event = self._claim_or_event(key)
        if event is None:
            return False, None  # our claim: caller computes and stores
        self.dedupe_waits += 1
        if event.wait(self.wait_timeout):
            hit, value = self.inner.lookup(key)
            if hit:
                self.dedupe_hits += 1
                return True, value
        # Abandoned or failed claim: take it over and compute ourselves.
        with self._lock:
            self._claims[key] = (threading.Event(), time.monotonic())
        return False, None

    def _claim_or_event(self, key: str) -> Optional[threading.Event]:
        """Register a claim (returning None) or join an existing fresh one."""
        now = time.monotonic()
        with self._lock:
            if len(self._claims) > _PRUNE_THRESHOLD:
                stale = [
                    k
                    for k, (_, when) in self._claims.items()
                    if now - when > self.wait_timeout
                ]
                for k in stale:
                    self._claims.pop(k, None)
            entry = self._claims.get(key)
            if entry is not None and now - entry[1] <= self.wait_timeout:
                return entry[0]
            self._claims[key] = (threading.Event(), now)
            return None

    def _resolve(self, key: str) -> None:
        with self._lock:
            entry = self._claims.pop(key, None)
        if entry is not None:
            entry[0].set()

    def store(self, key: str, value: Any) -> None:
        self.inner.store(key, value)
        self._resolve(key)

    def store_many(self, items) -> None:
        items = list(items)
        inner_many = getattr(self.inner, "store_many", None)
        if inner_many is not None:
            inner_many(items)
        else:
            for key, value in items:
                self.inner.store(key, value)
        for key, _ in items:
            self._resolve(key)

    # -- delegation ------------------------------------------------------
    @property
    def stats(self):
        return self.inner.stats

    def dedupe_stats(self) -> Dict[str, int]:
        return {"waits": self.dedupe_waits, "hits": self.dedupe_hits}

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, name: str):
        # keys / evict / clear / compact / close / report / enforce_policy…
        return getattr(self.inner, name)
