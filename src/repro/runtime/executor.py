"""Executor layer: run job sets serially, on threads, or on processes.

One entry point — :func:`run_jobs` — drives any :class:`Executor`.  The
contract, identical for every backend:

* results come back in **job order**, never completion order;
* each job's outcome is captured in a :class:`JobResult` (value, error text,
  wall-clock duration, cache provenance) so one failing scenario doesn't tear
  down a thousand-job sweep unless the caller asks it to (``reraise=True``,
  the default, re-raises the first failure *after* all jobs finished);
* jobs with a content key consult the :class:`~repro.runtime.cache.ResultCache`
  first and store their result on completion, so a characterized cell is never
  recomputed — not in this process, not in any future one.

``ThreadExecutor`` suits jobs dominated by BLAS/LAPACK calls (which release
the GIL); ``ProcessExecutor`` isolates pure-Python integration loops at the
price of pickling job inputs and results.
"""

from __future__ import annotations

import logging
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from .jobs import Job

__all__ = [
    "JobError",
    "JobResult",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_executor",
    "run_jobs",
]

logger = logging.getLogger("repro.runtime")


class JobError(RuntimeError):
    """A job failed inside an executor; carries the remote traceback text."""

    def __init__(self, job_name: str, error_text: str):
        super().__init__(f"job {job_name!r} failed:\n{error_text}")
        self.job_name = job_name
        self.error_text = error_text


@dataclass
class JobResult:
    """Outcome of one job.

    Attributes
    ----------
    job:
        The job that produced this result.
    value:
        Return value (``None`` when the job failed).
    error:
        Formatted traceback text when the job raised, else ``None``.
    duration:
        Wall-clock seconds spent executing (0.0 for cache hits).
    cache_hit:
        True when the value came from the disk cache instead of executing.
    """

    job: Job
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _execute(job: Job) -> JobResult:
    """Run one job, capturing errors and timing.  Runs inside workers."""
    start = time.perf_counter()
    try:
        value = job.run()
    except Exception:
        return JobResult(
            job=job,
            error=traceback.format_exc(),
            duration=time.perf_counter() - start,
        )
    return JobResult(job=job, value=value, duration=time.perf_counter() - start)


class Executor:
    """Interface: map a job sequence to results, preserving order."""

    def map_jobs(self, jobs: Sequence[Job]) -> List[JobResult]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(Executor):
    """Run jobs one after another in the calling process (the default)."""

    def map_jobs(self, jobs: Sequence[Job]) -> List[JobResult]:
        return [_execute(job) for job in jobs]


class _PoolExecutor(Executor):
    """Shared submit/gather logic for the concurrent.futures backends.

    The underlying pool is created lazily on first use and reused across
    ``map_jobs`` calls, so workers (and, for processes, their imported
    modules) are paid for once per executor, not once per job set.  Call
    :meth:`shutdown` to release the workers early; otherwise
    ``concurrent.futures`` reaps them at interpreter exit.
    """

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def map_jobs(self, jobs: Sequence[Job]) -> List[JobResult]:
        if not jobs:
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        futures = [self._pool.submit(_execute, job) for job in jobs]
        try:
            # Gather in submission order: deterministic result ordering.
            return [future.result() for future in futures]
        except BrokenExecutor:
            # A hard worker crash poisons the pool; drop it so the next
            # map_jobs call starts from a healthy one.
            self.shutdown()
            raise

    def shutdown(self) -> None:
        """Release the worker pool (a later map_jobs recreates it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def describe(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Thread pool; best when the work releases the GIL (BLAS/LAPACK)."""

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessExecutor(_PoolExecutor):
    """Process pool; jobs and results must be picklable."""

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.max_workers)


def default_executor(workers: int, kind: str = "process") -> Executor:
    """Pick an executor for ``workers`` parallel slots.

    ``workers <= 1`` always yields the serial executor; otherwise ``kind``
    selects ``"process"`` (default) or ``"thread"``.
    """
    if workers <= 1:
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(max_workers=workers)
    if kind == "process":
        return ProcessExecutor(max_workers=workers)
    raise ValueError(f"unknown executor kind {kind!r} (use 'process' or 'thread')")


def run_jobs(
    jobs: Sequence[Job],
    executor: Optional[Executor] = None,
    cache: Optional[Any] = None,
    reraise: bool = True,
) -> List[JobResult]:
    """Run a job set through an executor, short-circuiting via the cache.

    Parameters
    ----------
    jobs:
        Jobs to run.  Results are returned in the same order.
    executor:
        Backend to execute cache misses on; defaults to
        :class:`SerialExecutor`.
    cache:
        A :class:`~repro.runtime.cache.ResultCache`.  Jobs whose ``key`` is
        set are looked up first (a hit skips execution entirely) and stored
        after successful execution.
    reraise:
        When true (default) the first failed job raises :class:`JobError`
        after all jobs have finished; when false, failures are only recorded
        on the returned :class:`JobResult` objects.
    """
    executor = executor or SerialExecutor()
    results: List[Optional[JobResult]] = [None] * len(jobs)

    pending: List[int] = []
    for index, item in enumerate(jobs):
        if cache is not None and item.key is not None:
            hit, value = cache.lookup(item.key)
            if hit:
                logger.info("cache hit %s (%s)", item.name, item.key[:12])
                results[index] = JobResult(job=item, value=value, cache_hit=True)
                continue
            logger.info("cache miss %s (%s)", item.name, item.key[:12])
        pending.append(index)

    if pending:
        executed = executor.map_jobs([jobs[i] for i in pending])
        for index, result in zip(pending, executed):
            results[index] = result
            if cache is not None and result.ok and jobs[index].key is not None:
                cache.store(jobs[index].key, result.value)

    final = [r for r in results if r is not None]
    assert len(final) == len(jobs)
    if reraise:
        for result in final:
            if not result.ok:
                raise JobError(result.job.name, result.error or "")
    return final
