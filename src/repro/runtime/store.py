"""Packed, mmap-backed result store: one data file, one index, zero unzip.

The per-entry ``.npz`` layout of :class:`~repro.runtime.cache.ResultCache`
pays an open + decompress cost of roughly a millisecond per entry, which is
what makes warm incremental re-timing I/O-bound (ROADMAP, PR 4).  This module
replaces it with a packed single-file store in the spirit of contiguous
shared-memory block storage:

* ``store.dat`` — an append-only record log, the **source of truth**.  Every
  record is self-describing (magic, length-prefixed JSON header, raw
  C-contiguous array bytes) so the whole index can be rebuilt by a linear
  scan.
* ``store.idx`` — a JSONL acceleration index (``key`` → record offset, or the
  payload itself for tiny entries).  Purely derived data: corrupt, stale or
  missing indexes are reconciled against ``store.dat`` on open.
* ``store.lock`` — ``flock`` target serializing appends across processes.

Read side: ``store.dat`` is mapped once via :func:`numpy.memmap`; array
payloads become views into the mapping (no copy, no decompression), with a
CRC32 over the payload verified per lookup so torn or overwritten bytes
degrade to a miss + eviction, never a wrong result.

Atomicity / crash-safety guarantees:

* an append happens under the file lock: record bytes are written and
  fsynced to ``store.dat`` *before* the index line is appended — a crash
  between the two leaves a record the next open recovers by scanning the
  data-file tail;
* a crash mid-record leaves trailing garbage that fails the magic/bounds
  check; it is ignored by readers and truncated away by the next locked
  append (the lock guarantees nobody else is mid-write);
* a torn index line is skipped (and the newline repaired before the next
  append); the entries it described are recovered from ``store.dat``.

Tiny payloads (e.g. the NLDM engine's per-instance event tuples) are stored
inline in the index — no data-file record at all.

Bounded disk (PR 7): ``PackedStore(max_bytes=, max_age_s=)`` turns the
store into a self-maintaining cache — last access times ride in the index
(``ts`` on put/inline lines plus lazily flushed ``touch`` lines), and
:meth:`PackedStore.enforce_policy` evicts by age then by LRU order until the
budget holds, compacting immediately afterwards so the bytes actually come
back.  Eviction is always *miss-only* degradation: a later lookup of an
evicted key misses and the caller recomputes.

:class:`ShardedPackedStore` routes keys by hash prefix across N independent
``PackedStore`` shards (each with its own flock), so concurrent writers —
e.g. many timing-server sessions — never contend on a single lock.  The
shard count is pinned in ``shards.json`` at creation, which keeps routing
stable across processes and re-opens.

``python -m repro.runtime.store migrate SRC DEST`` converts a per-entry
``.npz`` cache directory into a packed store; ``compact`` rewrites the data
file dropping dead records; ``stats`` prints entry counts and file sizes.
"""

from __future__ import annotations

import base64
import json
import logging
import math
import mmap
import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .cache import CacheStats, ResultCache, decode_payload, encode_payload
from .jobs import contiguous_array

try:  # POSIX only; the store degrades to in-process locking elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = [
    "PackedStore",
    "ShardedPackedStore",
    "open_result_store",
    "migrate_npz_cache",
]

logger = logging.getLogger("repro.runtime")

#: Record magic: bumped if the record layout ever changes.
_MAGIC = b"PKW2"
_PREFIX = struct.Struct("<4sII")  # magic + header length + header CRC32
#: Records start, and payload arrays lie, on 8-byte boundaries: the header
#: is space-padded so the payload begins at prefix+hlen ≡ 0 (mod 8), and the
#: payload is zero-padded so every record length is a multiple of 8.
_ALIGN = 8
#: Encoded payloads at or below this many raw bytes live in the index line.
_INLINE_LIMIT = 2048

_DATA_NAME = "store.dat"
_INDEX_NAME = "store.idx"
_LOCK_NAME = "store.lock"
_SHARD_META_NAME = "shards.json"
#: Dirty access-time updates buffered in memory before one batched index
#: append — bounds the write amplification of recency tracking.
_TOUCH_FLUSH_LIMIT = 256


def _pad(offset: int) -> int:
    return -offset % _ALIGN


class _FileLock:
    """Advisory cross-process lock (flock) + in-process re-entrant lock.

    Tracks how long outermost acquisitions waited (``wait_seconds`` /
    ``acquisitions``) — the shard-contention metric reported by the stores.
    """

    def __init__(self, path: Path):
        self._path = path
        self.thread_lock = threading.RLock()
        self._handle = None
        self._depth = 0
        self.acquisitions = 0
        self.wait_seconds = 0.0

    def __enter__(self):
        start = time.perf_counter()
        self.thread_lock.acquire()
        self._depth += 1
        if self._depth == 1:
            if fcntl is not None:
                self._handle = open(self._path, "ab")
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            self.acquisitions += 1
            self.wait_seconds += time.perf_counter() - start
        return self

    def __exit__(self, *exc):
        self._depth -= 1
        if self._depth == 0 and self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
        self.thread_lock.release()
        return False


class PackedStore:
    """Content-addressed packed store behind the :class:`ResultCache` API.

    ``lookup`` / ``store`` / ``stats`` / ``evict`` / ``clear`` / ``keys`` are
    drop-in compatible, so anything that accepts a ``ResultCache`` (engines,
    :func:`repro.runtime.run_jobs`, the model library) accepts a
    ``PackedStore`` unchanged — with one intentional difference: decoded
    arrays are zero-copy **read-only** views into the mapping (the npz cache
    returns fresh writable arrays).  Copy before mutating a looked-up value.
    """

    def __init__(
        self,
        directory: os.PathLike,
        inline_limit: int = _INLINE_LIMIT,
        max_dead_bytes: Optional[int] = None,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ):
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.inline_limit = inline_limit
        #: Dead-byte budget: when set, :meth:`close` (and every open) runs
        #: :meth:`compact` automatically once the data file carries more than
        #: this many unreachable bytes.  ``None`` (default) never compacts on
        #: its own — the PR 5 behaviour.
        self.max_dead_bytes = max_dead_bytes
        #: Live-byte budget: when set, :meth:`enforce_policy` LRU-evicts until
        #: live entries fit.  Checked on open, close and after stores.
        self.max_bytes = max_bytes
        #: Age budget: entries not accessed for this many seconds are evicted
        #: by :meth:`enforce_policy`.
        self.max_age_s = max_age_s
        self.stats = CacheStats()
        #: Lifetime eviction-policy counters (reported via :meth:`report`).
        self.policy_stats = {
            "age_evictions": 0,
            "lru_evictions": 0,
            "policy_compactions": 0,
        }
        self._init_runtime_state()
        # An (empty) data file makes the layout self-identifying, which is
        # what ``open_result_store(..., "auto")`` keys on.
        self._dat_path.touch(exist_ok=True)
        self._load_index()
        self._maybe_autocompact()
        self.enforce_policy()

    # -- pickling: worker processes reopen the files lazily --------------
    def _init_runtime_state(self) -> None:
        self._lock = _FileLock(self._lock_path)
        #: key -> pin refcount; pinned keys survive evict()/enforce_policy().
        #: Process-local (pins guard live memmap views in *this* process).
        self._pins: Dict[str, int] = {}
        self._reset_view()

    def _reset_view(self) -> None:
        self._mm: Optional[np.memmap] = None
        #: key -> ("dat", offset, length) | ("inline", index-line dict)
        self._entries: Dict[str, Tuple] = {}
        #: key -> last access epoch seconds (persisted ``ts`` or load time)
        self._access: Dict[str, float] = {}
        #: keys whose in-memory access time is newer than the index
        self._dirty_touches: set = set()
        self._idx_consumed = 0  # bytes of store.idx already parsed
        self._dat_scanned = 0  # bytes of store.dat covered by _entries
        self._idx_ino = 0  # inode of store.idx when last parsed
        self._dat_ino = 0  # inode of store.dat when last scanned

    def __getstate__(self):
        return {
            "directory": self.directory,
            "inline_limit": self.inline_limit,
            "max_dead_bytes": self.max_dead_bytes,
            "max_bytes": self.max_bytes,
            "max_age_s": self.max_age_s,
            "stats": self.stats,
        }

    def __setstate__(self, state):
        self.directory = state["directory"]
        self.inline_limit = state["inline_limit"]
        self.max_dead_bytes = state.get("max_dead_bytes")
        self.max_bytes = state.get("max_bytes")
        self.max_age_s = state.get("max_age_s")
        self.stats = state["stats"]
        self.policy_stats = {
            "age_evictions": 0,
            "lru_evictions": 0,
            "policy_compactions": 0,
        }
        self._init_runtime_state()
        self._load_index()

    # ------------------------------------------------------------------
    @property
    def _dat_path(self) -> Path:
        return self.directory / _DATA_NAME

    @property
    def _idx_path(self) -> Path:
        return self.directory / _INDEX_NAME

    @property
    def _lock_path(self) -> Path:
        return self.directory / _LOCK_NAME

    def _dat_size(self) -> int:
        try:
            return self._dat_path.stat().st_size
        except FileNotFoundError:
            return 0

    @staticmethod
    def _file_sig(path: Path) -> Tuple[int, int]:
        """``(inode, size)`` — the staleness signature of an index/data file.

        Sizes alone cannot detect a ``clear()``/``compact()`` by another
        process that happens to rewrite a file to the same length; the
        inode changes on every ``os.replace``.
        """
        try:
            info = path.stat()
        except FileNotFoundError:
            return 0, 0
        return info.st_ino, info.st_size

    def _memmap(self, min_size: int) -> np.memmap:
        """The byte view of ``store.dat``, remapped when the file grew."""
        if self._mm is None or self._mm.size < min_size:
            self._mm = np.memmap(self._dat_path, dtype=np.uint8, mode="r")
        return self._mm

    # ------------------------------------------------------------------
    # Index loading / reconciliation
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        """Parse ``store.idx``, then reconcile against ``store.dat``.

        The index is only an accelerator: entries pointing past the end of
        the data file (stale index over a truncated file) are dropped as
        evictions, records present in the data file but missing from the
        index (crash between the two appends, or a torn index line) are
        recovered by scanning the data-file tail.
        """
        evictions_before = self.stats.evictions
        if self._parse_index_files():
            # Records existed that the index never mentioned (crashed writer,
            # or a lost/corrupt/stale index).  Persist a canonical snapshot so
            # later tombstones can never be out-ordered by a future tail scan
            # — but re-parse under the lock first: another process may have
            # appended lines (including tombstones) between our lock-free
            # read and the lock acquisition, and the snapshot must not
            # clobber them.
            with self._lock:
                # The locked re-parse recounts the first pass's evictions.
                self.stats.evictions = evictions_before
                self._reset_view()
                self._parse_index_files()
                self._write_index_snapshot()

    def _parse_index_files(self) -> int:
        """One parse + reconcile pass; returns the tail-recovery count."""
        self._dat_ino, dat_size = self._file_sig(self._dat_path)
        self._idx_ino = self._file_sig(self._idx_path)[0]
        try:
            raw = self._idx_path.read_bytes()
        except FileNotFoundError:
            raw = b""
        consumed = 0
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn tail line: repaired before the next append
            try:
                record = json.loads(line)
                self._apply_index_record(record, dat_size)
            except Exception:
                logger.warning("skipping unreadable index line in %s", self._idx_path)
            consumed += len(line)
        self._idx_consumed = consumed
        return self._recover_tail(dat_size)

    def _apply_index_record(self, record: Dict[str, Any], dat_size: int) -> None:
        op = record.get("op")
        key = record.get("key")
        if op == "put":
            offset, length = int(record["off"]), int(record["len"])
            if offset + length <= dat_size:
                self._entries[key] = ("dat", offset, length)
                self._access[key] = float(record.get("ts") or time.time())
                self._dat_scanned = max(self._dat_scanned, offset + length)
            else:  # index outlives a truncated data file
                self._entries.pop(key, None)
                self._access.pop(key, None)
                self.stats.evictions += 1
        elif op == "inline":
            self._entries[key] = ("inline", record)
            self._access[key] = float(record.get("ts") or time.time())
        elif op == "drop":
            self._entries.pop(key, None)
            self._access.pop(key, None)
        elif op == "touch":
            # Recency-only update; pre-PR 7 readers treat these lines as
            # unreadable and skip them, which is harmless.
            if key in self._entries:
                self._access[key] = float(record.get("ts") or time.time())
        else:
            raise ValueError(f"unknown index op {op!r}")

    def _recover_tail(self, dat_size: int) -> int:
        """Scan ``store.dat`` past the indexed region, adopting whole records."""
        recovered = 0
        for key, offset, length in self._scan_dat(self._dat_scanned, dat_size):
            self._entries[key] = ("dat", offset, length)
            self._access.setdefault(key, time.time())
            self._dat_scanned = offset + length
            recovered += 1
        return recovered

    def _scan_dat(
        self, start: int, stop: int
    ) -> Iterator[Tuple[str, int, int]]:
        """Yield ``(key, offset, record_length)`` for intact records.

        Stops at the first corrupt or truncated record — everything after a
        bad record is unreachable garbage by construction (appends are
        serialized and fsynced front to back).
        """
        if stop <= start:
            return
        view = self._memmap(stop)
        offset = start
        while offset + _PREFIX.size <= stop:
            magic, header_len, header_crc = _PREFIX.unpack(
                view[offset : offset + _PREFIX.size].tobytes()
            )
            if magic != _MAGIC:
                return
            header_end = offset + _PREFIX.size + header_len
            if header_end > stop:
                return
            header_bytes = view[offset + _PREFIX.size : header_end].tobytes()
            if zlib.crc32(header_bytes) != header_crc:
                return
            try:
                header = json.loads(header_bytes)
                key = header["key"]
                payload_len = int(header["plen"])
            except Exception:
                return
            record_end = header_end + payload_len
            if record_end > stop:
                return
            yield key, offset, record_end - offset
            offset = record_end

    def rebuild_index(self) -> int:
        """Re-derive ``store.idx`` and persist a canonical snapshot.

        Returns the number of live entries.  Normally unnecessary — open
        reconciles automatically — but useful after hand-editing or to drop
        accumulated tombstone lines without a full :meth:`compact`.  The
        existing index is parsed first (never scanned-over blind): its
        tombstones are *applied* before the snapshot drops their lines, so
        evicted entries stay evicted.
        """
        with self._lock:
            self._reset_view()
            self._parse_index_files()
            self._write_index_snapshot()
            return len(self._entries)

    def _write_index_snapshot(self) -> None:
        """Atomically replace ``store.idx`` with the in-memory entry map.

        Must hold the lock.
        """
        lines = []
        for key, entry in self._entries.items():
            ts = self._access.get(key)
            if entry[0] == "dat":
                record = {"op": "put", "key": key, "off": entry[1], "len": entry[2]}
                if ts is not None:
                    record["ts"] = ts
                lines.append(json.dumps(record, separators=(",", ":")))
            else:
                record = entry[1] if ts is None else {**entry[1], "ts": ts}
                lines.append(json.dumps(record, separators=(",", ":")))
        self._dirty_touches.clear()  # the snapshot carries current recency
        tmp = self._idx_path.with_suffix(".idx.tmp")
        tmp.write_text("".join(line + "\n" for line in lines))
        os.replace(tmp, self._idx_path)
        self._idx_ino, self._idx_consumed = self._file_sig(self._idx_path)

    def _refresh(self) -> None:
        """Adopt entries appended by other processes since our last look."""
        idx_ino, idx_size = self._file_sig(self._idx_path)
        dat_ino, dat_size = self._file_sig(self._dat_path)
        if (
            idx_size < self._idx_consumed
            or idx_ino != self._idx_ino
            or dat_ino != self._dat_ino
        ):
            # The files shrank or were replaced under us (clear/compact by
            # another process): restart from scratch.
            self._reset_view()
            self._load_index()
            return
        if idx_size == self._idx_consumed and dat_size == self._dat_scanned:
            return
        with open(self._idx_path, "rb") as handle:
            handle.seek(self._idx_consumed)
            raw = handle.read()
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break
            try:
                self._apply_index_record(json.loads(line), dat_size)
            except Exception:
                logger.warning("skipping unreadable index line in %s", self._idx_path)
            self._idx_consumed += len(line)
        self._recover_tail(dat_size)

    # ------------------------------------------------------------------
    # Store path
    # ------------------------------------------------------------------
    @staticmethod
    def _array_spec(array: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any]]:
        contiguous = contiguous_array(array)
        return contiguous, {
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
        }

    def store(self, key: str, value: Any) -> None:
        """Append a value under its content key (atomic via lock + fsync)."""
        manifest, arrays = encode_payload(value)
        # The manifest counts against the inline limit too: array-free
        # payloads (e.g. a whole-run NLDM event map) can carry an arbitrarily
        # large manifest, which belongs in the data file, not the index.
        total_bytes = sum(array.nbytes for array in arrays.values()) + len(
            json.dumps(manifest, separators=(",", ":"))
        )
        if total_bytes <= self.inline_limit:
            self._store_inline(key, manifest, arrays)
            return

        record = self._build_record(key, manifest, arrays)
        with self._lock:
            self._refresh()  # adopt entries other processes appended meanwhile
            now = time.time()
            offset = self._locked_append_dat(record)
            self._locked_append_idx(
                {"op": "put", "key": key, "off": offset, "len": len(record), "ts": now}
            )
            self._entries[key] = ("dat", offset, len(record))
            self._access[key] = now
            self._dat_scanned = offset + len(record)
        self.stats.stores += 1
        self._maybe_enforce_after_store()

    def store_many(self, items) -> None:
        """Append many ``(key, value)`` pairs in ONE locked transaction.

        Equivalent to calling :meth:`store` per pair, but every data record
        is written under a single lock acquisition with a single fsync, and
        the index lines land in one append — this is what makes per-level
        spills (a whole-level tensor record plus one tiny pointer entry per
        instance) cost one I/O round-trip instead of one per instance.
        """
        encoded: List[Tuple[str, str, Any]] = []  # (kind, key, record)
        for key, value in items:
            manifest, arrays = encode_payload(value)
            total_bytes = sum(array.nbytes for array in arrays.values()) + len(
                json.dumps(manifest, separators=(",", ":"))
            )
            if total_bytes <= self.inline_limit:
                encoded.append(("inline", key, self._build_inline_record(key, manifest, arrays)))
            else:
                encoded.append(("dat", key, self._build_record(key, manifest, arrays)))
        if not encoded:
            return
        with self._lock:
            self._refresh()
            now = time.time()
            dat_records = [(key, record) for kind, key, record in encoded if kind == "dat"]
            offsets: Dict[str, int] = {}
            if dat_records:
                blob = b"".join(record for _, record in dat_records)
                base = self._locked_append_dat(blob)
                for key, record in dat_records:
                    offsets[key] = base
                    base += len(record)
            index_records = []
            for kind, key, record in encoded:
                if kind == "inline":
                    record = {**record, "ts": now}
                    index_records.append(record)
                    self._entries[key] = ("inline", record)
                else:
                    offset = offsets[key]
                    index_records.append(
                        {"op": "put", "key": key, "off": offset, "len": len(record), "ts": now}
                    )
                    self._entries[key] = ("dat", offset, len(record))
                    self._dat_scanned = max(self._dat_scanned, offset + len(record))
                self._access[key] = now
            self._locked_append_idx_many(index_records)
        self.stats.stores += len(encoded)
        self._maybe_enforce_after_store()

    def _build_record(self, key: str, manifest: Any, arrays: Dict[str, np.ndarray]) -> bytes:
        """Serialize one data-file record (prefix + padded header + payload)."""
        specs: List[Dict[str, Any]] = []
        chunks: List[bytes] = []
        payload_len = 0
        for name, array in arrays.items():
            contiguous, spec = self._array_spec(array)
            padding = _pad(payload_len)
            if padding:
                chunks.append(b"\x00" * padding)
                payload_len += padding
            spec.update({"name": name, "rel": payload_len, "nb": contiguous.nbytes})
            chunks.append(contiguous.tobytes())
            payload_len += contiguous.nbytes
            specs.append(spec)
        tail_pad = _pad(payload_len)
        if tail_pad:  # keep the *next* record's start 8-byte aligned
            chunks.append(b"\x00" * tail_pad)
            payload_len += tail_pad
        payload = b"".join(chunks)
        crc = zlib.crc32(payload)
        header = json.dumps(
            {
                "key": key,
                "manifest": manifest,
                "arrays": specs,
                "plen": payload_len,
                "crc": crc,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        # Space-pad the header (JSON tolerates trailing whitespace) so the
        # payload starts 8-byte aligned; the header CRC lives in the fixed
        # prefix so a digit flip inside the JSON can never decode as a hit.
        header += b" " * _pad(_PREFIX.size + len(header))
        return _PREFIX.pack(_MAGIC, len(header), zlib.crc32(header)) + header + payload

    @staticmethod
    def _inline_sig(manifest: Any, inline_arrays: Dict[str, Any]) -> int:
        """Integrity checksum of an inline entry's content.

        A bit flip inside an index line can keep the JSON valid (a digit in
        a float, a base64 character); without this, such corruption would be
        served as a hit with wrong values.
        """
        blob = json.dumps(
            {"m": manifest, "a": inline_arrays}, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return zlib.crc32(blob)

    def _build_inline_record(
        self, key: str, manifest: Any, arrays: Dict[str, np.ndarray]
    ) -> Dict[str, Any]:
        inline_arrays = {}
        for name, array in arrays.items():
            contiguous, spec = self._array_spec(array)
            spec["b64"] = base64.b64encode(contiguous.tobytes()).decode("ascii")
            inline_arrays[name] = spec
        return {
            "op": "inline",
            "key": key,
            "manifest": manifest,
            "arrays": inline_arrays,
            "crc": self._inline_sig(manifest, inline_arrays),
        }

    def _store_inline(self, key: str, manifest: Any, arrays: Dict[str, np.ndarray]) -> None:
        """Tiny payloads (event tuples, scalars) live directly in the index."""
        record = self._build_inline_record(key, manifest, arrays)
        with self._lock:
            self._refresh()
            now = time.time()
            record = {**record, "ts": now}
            self._locked_append_idx(record)
            self._entries[key] = ("inline", record)
            self._access[key] = now
        self.stats.stores += 1
        self._maybe_enforce_after_store()

    def _locked_append_dat(self, record: bytes) -> int:
        """Append a record to ``store.dat``; returns its offset.

        Must hold the lock.  Another process may have appended since our
        last refresh, and a crashed one may have left a torn record at the
        tail: adopt the former, truncate the latter (safe — the lock
        guarantees no live writer is mid-record).
        """
        end = self._dat_scanned
        with open(self._dat_path, "ab") as handle:
            if os.fstat(handle.fileno()).st_size != end:
                # Trailing garbage from a crashed writer ('a' mode always
                # writes at EOF, so it must be cut off first).
                handle.truncate(end)
            handle.write(record)
            handle.flush()
            os.fsync(handle.fileno())
            self._dat_ino = os.fstat(handle.fileno()).st_ino
        return end

    def _locked_append_idx(self, record: Dict[str, Any]) -> None:
        """Append one JSONL line, repairing a torn tail line first."""
        self._locked_append_idx_many([record])

    def _locked_append_idx_many(self, records: List[Dict[str, Any]]) -> None:
        """Append many JSONL lines in one write, repairing a torn tail first."""
        line = b"".join(
            (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
            for record in records
        )
        with open(self._idx_path, "ab") as handle:
            end = os.fstat(handle.fileno()).st_size
            if end:
                with open(self._idx_path, "rb") as reader:
                    reader.seek(end - 1)
                    if reader.read(1) != b"\n":
                        handle.write(b"\n")  # repair a torn tail line
            handle.write(line)
            handle.flush()
        self._idx_ino, self._idx_consumed = self._file_sig(self._idx_path)

    # ------------------------------------------------------------------
    # Lookup path
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; counts the hit or miss on :attr:`stats`."""
        with self._lock.thread_lock:
            entry = self._entries.get(key)
            if entry is None:
                self._refresh()
                entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return False, None
        # Decode outside the lock: the record bytes at a committed offset
        # never change (appends go past them; clear/compact swap inodes), so
        # concurrent readers should not serialize on the CRC + decode work.
        try:
            value = self._decode_entry(key, entry)
        except Exception:
            logger.warning(
                "dropping unreadable packed-store entry %s", key, exc_info=True
            )
            with self._lock.thread_lock:
                self._entries.pop(key, None)
                self.stats.misses += 1
                self.stats.evictions += 1
            return False, None
        with self._lock.thread_lock:
            self.stats.hits += 1
            self._note_access(key)
        return True, value

    def _note_access(self, key: str) -> None:
        """Record a hit's recency; persisted lazily in batched touch lines.

        Must hold at least the thread lock.  Touch lines are only written
        when an eviction policy is active — without one, recency is kept in
        memory for reporting but never amplifies index writes.
        """
        self._access[key] = time.time()
        if self.max_bytes is None and self.max_age_s is None:
            return
        self._dirty_touches.add(key)
        if len(self._dirty_touches) >= _TOUCH_FLUSH_LIMIT:
            self._flush_touches()

    def _flush_touches(self) -> None:
        with self._lock:
            if not self._dirty_touches:
                return
            records = [
                {"op": "touch", "key": key, "ts": self._access[key]}
                for key in sorted(self._dirty_touches)
                if key in self._entries and key in self._access
            ]
            self._dirty_touches.clear()
            if records:
                self._locked_append_idx_many(records)

    def _decode_entry(self, key: str, entry: Tuple) -> Any:
        if entry[0] == "inline":
            record = entry[1]
            if record.get("crc") != self._inline_sig(record["manifest"], record["arrays"]):
                raise ValueError("inline entry CRC mismatch")
            arrays = {
                name: np.frombuffer(
                    base64.b64decode(spec["b64"]), dtype=np.dtype(spec["dtype"])
                ).reshape(spec["shape"])
                for name, spec in record["arrays"].items()
            }
            return decode_payload(record["manifest"], arrays)

        _, offset, length = entry
        if offset + length > self._dat_size():
            raise ValueError("record extends past the end of the data file")
        view = self._memmap(offset + length)
        magic, header_len, header_crc = _PREFIX.unpack(
            view[offset : offset + _PREFIX.size].tobytes()
        )
        if magic != _MAGIC:
            raise ValueError("bad record magic")
        header_end = offset + _PREFIX.size + header_len
        header_bytes = view[offset + _PREFIX.size : header_end].tobytes()
        if zlib.crc32(header_bytes) != header_crc:
            raise ValueError("header CRC mismatch")
        header = json.loads(header_bytes)
        if header["key"] != key:
            raise ValueError("record key mismatch")
        payload_len = int(header["plen"])
        if header_end + payload_len != offset + length:
            raise ValueError("record length mismatch")
        payload = view[header_end : header_end + payload_len]
        if zlib.crc32(payload) != header["crc"]:
            raise ValueError("payload CRC mismatch")
        arrays = {}
        for spec in header["arrays"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            count = int(math.prod(shape))
            arrays[spec["name"]] = np.frombuffer(
                view, dtype=dtype, count=count, offset=header_end + spec["rel"]
            ).reshape(shape)
        return decode_payload(header["manifest"], arrays)

    # ------------------------------------------------------------------
    # Bookkeeping / maintenance
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock.thread_lock:
            if key not in self._entries:
                self._refresh()
            return key in self._entries

    def __len__(self) -> int:
        with self._lock.thread_lock:
            self._refresh()
            return len(self._entries)

    def keys(self) -> List[str]:
        with self._lock.thread_lock:
            self._refresh()
            return sorted(self._entries)

    def pin(self, key: str) -> bool:
        """Protect an entry from eviction while a view into it is live.

        Pins are refcounted and process-local.  A pinned entry is skipped by
        :meth:`evict` and :meth:`enforce_policy`, so a streaming engine can
        hold zero-copy memmap views across a policy sweep without risking a
        compaction pulling the record out from under them.  Returns ``False``
        when the key does not exist (nothing to pin).
        """
        with self._lock.thread_lock:
            if key not in self._entries:
                self._refresh()
            if key not in self._entries:
                return False
            self._pins[key] = self._pins.get(key, 0) + 1
            return True

    def unpin(self, key: str) -> None:
        """Drop one pin reference; the entry becomes evictable at zero."""
        with self._lock.thread_lock:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
            else:
                self._pins.pop(key, None)

    def pinned_keys(self) -> List[str]:
        with self._lock.thread_lock:
            return sorted(self._pins)

    def release_record_pages(self, key: str) -> int:
        """Drop the resident pages backing one data-file record.

        The data file is mapped ``MAP_SHARED`` read-only, so
        ``MADV_DONTNEED`` only evicts the pages from this process's resident
        set — a later touch refaults them from the page cache / disk with
        identical contents.  This is how the streaming engine keeps peak RSS
        bounded: spilled level tensors stay addressable (the view survives)
        but stop counting against resident memory.  Returns the number of
        bytes advised away (0 when the record is inline, unmapped, or the
        platform lacks ``madvise``).
        """
        if not hasattr(mmap, "MADV_DONTNEED"):
            return 0
        with self._lock.thread_lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != "dat" or self._mm is None:
                return 0
            _, offset, length = entry
            page = mmap.PAGESIZE
            # Round *inward*: never advise pages shared with a neighbour.
            start = ((offset + page - 1) // page) * page
            stop = ((offset + length) // page) * page
            if stop <= start or stop > len(self._mm):
                return 0
            try:
                raw = self._mm._mmap  # the underlying mmap object
                raw.madvise(mmap.MADV_DONTNEED, start, stop - start)
            except (AttributeError, ValueError, OSError):
                return 0
            return stop - start

    def evict(self, key: str) -> bool:
        """Remove one entry (tombstone in the index; data reclaimed by
        :meth:`compact`).  Pinned entries are refused."""
        with self._lock:
            self._refresh()
            if key not in self._entries:
                return False
            if self._pins.get(key, 0) > 0:
                return False
            del self._entries[key]
            self._access.pop(key, None)
            self._dirty_touches.discard(key)
            self._locked_append_idx({"op": "drop", "key": key})
            return True

    def clear(self) -> int:
        """Drop every entry, replacing both files with empty ones.

        Replace — never truncate — the data file: earlier lookups handed out
        zero-copy views into the current mapping, and truncating the mapped
        inode would turn their next access into a SIGBUS.  The replace keeps
        the old inode alive until the last mapping goes away.
        """
        with self._lock:
            self._refresh()
            removed = len(self._entries)
            self._entries.clear()
            self._access.clear()
            self._dirty_touches.clear()
            for path in (self._dat_path, self._idx_path):
                tmp = path.with_suffix(path.suffix + ".tmp")
                with open(tmp, "wb"):
                    pass
                os.replace(tmp, path)
            self._mm = None
            self._idx_consumed = 0
            self._dat_scanned = 0
            self._idx_ino = self._file_sig(self._idx_path)[0]
            self._dat_ino = self._file_sig(self._dat_path)[0]
            return removed

    def compact(self) -> Tuple[int, int]:
        """Rewrite ``store.dat`` keeping only live records.

        Dead bytes accumulate from overwritten keys and evictions (the data
        file is append-only).  Returns ``(entries_kept, bytes_reclaimed)``.
        Both files are replaced atomically; the in-memory view is reloaded.
        """
        with self._lock:
            self._refresh()
            old_size = self._dat_size()
            view = self._memmap(old_size) if old_size else None
            dat_tmp = self._dat_path.with_suffix(".dat.tmp")
            idx_lines: List[str] = []
            new_offset = 0
            new_entries: Dict[str, Tuple] = {}
            with open(dat_tmp, "wb") as out:
                for key, entry in self._entries.items():
                    ts = self._access.get(key)
                    if entry[0] == "inline":
                        record = entry[1] if ts is None else {**entry[1], "ts": ts}
                        idx_lines.append(json.dumps(record, separators=(",", ":")))
                        new_entries[key] = entry
                        continue
                    _, offset, length = entry
                    out.write(view[offset : offset + length].tobytes())
                    record = {"op": "put", "key": key, "off": new_offset, "len": length}
                    if ts is not None:
                        record["ts"] = ts
                    idx_lines.append(json.dumps(record, separators=(",", ":")))
                    new_entries[key] = ("dat", new_offset, length)
                    new_offset += length
                out.flush()
                os.fsync(out.fileno())
            idx_tmp = self._idx_path.with_suffix(".idx.tmp")
            idx_tmp.write_text("".join(line + "\n" for line in idx_lines))
            self._mm = None
            os.replace(dat_tmp, self._dat_path)
            os.replace(idx_tmp, self._idx_path)
            self._entries = new_entries
            self._dirty_touches.clear()  # the rewritten index carries recency
            self._dat_scanned = new_offset
            self._dat_ino = self._file_sig(self._dat_path)[0]
            self._idx_ino, self._idx_consumed = self._file_sig(self._idx_path)
            return len(new_entries), old_size - new_offset

    def file_sizes(self) -> Dict[str, int]:
        """On-disk byte sizes (reporting / benchmarks)."""
        sizes = {}
        for name, path in (("dat", self._dat_path), ("idx", self._idx_path)):
            try:
                sizes[name] = path.stat().st_size
            except FileNotFoundError:
                sizes[name] = 0
        return sizes

    def dead_bytes(self) -> int:
        """Bytes of ``store.dat`` no live entry references.

        Dead bytes accumulate from overwritten keys, evictions and torn
        tails (the data file is append-only); :meth:`compact` reclaims them.
        """
        with self._lock.thread_lock:
            self._refresh()
            live = sum(
                entry[2] for entry in self._entries.values() if entry[0] == "dat"
            )
            return max(0, self._dat_size() - live)

    @staticmethod
    def _entry_bytes(entry: Tuple) -> int:
        """Approximate on-disk cost of one live entry (record or index line)."""
        if entry[0] == "dat":
            return entry[2]
        return len(json.dumps(entry[1], separators=(",", ":"))) + 1

    def live_bytes(self) -> int:
        """Bytes of live data (data-file records + inline index lines)."""
        with self._lock.thread_lock:
            self._refresh()
            return sum(self._entry_bytes(entry) for entry in self._entries.values())

    def last_access(self, key: str) -> Optional[float]:
        """Epoch seconds of the key's last store/lookup, or ``None``."""
        with self._lock.thread_lock:
            return self._access.get(key)

    def enforce_policy(self, now: Optional[float] = None) -> Dict[str, int]:
        """Apply the LRU/age eviction policy; returns what was evicted.

        Entries older than :attr:`max_age_s` (by last access) go first, then
        least-recently-used entries until live bytes fit :attr:`max_bytes`.
        Eviction is followed immediately by :meth:`compact` — evict-then-
        compact — so the disk budget is actually honoured, not just the
        logical one.  Evicted keys degrade to misses on their next lookup.
        """
        report = {"age_evictions": 0, "lru_evictions": 0, "reclaimed_bytes": 0}
        if self.max_bytes is None and self.max_age_s is None:
            return report
        with self._lock:
            self._refresh()
            self._flush_touches()
            now = time.time() if now is None else now
            pinned = {key for key, count in self._pins.items() if count > 0}
            doomed: List[str] = []
            if self.max_age_s is not None:
                doomed = [
                    key
                    for key in self._entries
                    if key not in pinned
                    and now - self._access.get(key, now) > self.max_age_s
                ]
                report["age_evictions"] = len(doomed)
            if self.max_bytes is not None:
                doomed_set = set(doomed)
                sizes = {
                    key: self._entry_bytes(entry)
                    for key, entry in self._entries.items()
                    if key not in doomed_set
                }
                live = sum(sizes.values())
                if live > self.max_bytes:
                    for key in sorted(sizes, key=lambda k: self._access.get(k, 0.0)):
                        if live <= self.max_bytes:
                            break
                        if key in pinned:
                            continue
                        doomed.append(key)
                        live -= sizes[key]
                        report["lru_evictions"] += 1
            if doomed:
                for key in doomed:
                    self._entries.pop(key, None)
                    self._access.pop(key, None)
                    self._dirty_touches.discard(key)
                self.stats.evictions += len(doomed)
                self.policy_stats["age_evictions"] += report["age_evictions"]
                self.policy_stats["lru_evictions"] += report["lru_evictions"]
                self.policy_stats["policy_compactions"] += 1
                # compact() snapshots the surviving entries, so the dropped
                # keys need no tombstones and their bytes come back now.
                _, reclaimed = self.compact()
                report["reclaimed_bytes"] = reclaimed
        return report

    def _maybe_enforce_after_store(self) -> None:
        """Cheap post-store budget check (one ``stat`` pair per store)."""
        if self.max_bytes is None:
            return
        sizes = self.file_sizes()
        if sizes["dat"] + sizes["idx"] > self.max_bytes:
            self.enforce_policy()

    def lock_stats(self) -> Dict[str, float]:
        """Cross-process lock contention counters (shard metric)."""
        return {
            "acquisitions": self._lock.acquisitions,
            "wait_seconds": self._lock.wait_seconds,
        }

    def report(self) -> Dict[str, Any]:
        """One JSON-ready dict of everything an operator wants to know."""
        with self._lock.thread_lock:
            self._refresh()
            entries = len(self._entries)
            pinned = len(self._pins)
        stats = self.stats
        return {
            "entries": entries,
            "pinned": pinned,
            "file_sizes": self.file_sizes(),
            "live_bytes": self.live_bytes(),
            "dead_bytes": self.dead_bytes(),
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "stores": stats.stores,
                "evictions": stats.evictions,
            },
            "policy": dict(self.policy_stats),
            "lock": self.lock_stats(),
        }

    def _maybe_autocompact(self) -> None:
        if self.max_dead_bytes is None:
            return
        if self.dead_bytes() > self.max_dead_bytes:
            kept, reclaimed = self.compact()
            logger.info(
                "auto-compacted %s: %d entries kept, %d bytes reclaimed",
                self.directory,
                kept,
                reclaimed,
            )

    def close(self) -> None:
        """Flush recency, apply the eviction policy, auto-compact past the
        dead-byte budget, and release the data-file mapping.  The store stays
        usable — the next lookup simply remaps the file."""
        self._flush_touches()
        self.enforce_policy()
        self._maybe_autocompact()
        self._mm = None


# ----------------------------------------------------------------------
# Sharded store
# ----------------------------------------------------------------------
class ShardedPackedStore:
    """N independent :class:`PackedStore` shards behind one store facade.

    Keys route by hash prefix — ``int(key[:8], 16) % num_shards`` for the
    hex digests produced by :func:`repro.runtime.jobs.content_hash`, with a
    CRC32 fallback for arbitrary keys — so concurrent writers of different
    keys land on different shards and never contend on a single ``flock``.
    Routing depends only on the key and the shard count; the count is pinned
    in ``shards.json`` when the store is first created, and later ``shards=``
    arguments are ignored in favour of the persisted value, which keeps
    routing stable across processes and re-opens.

    ``max_bytes`` is a *total* budget, divided evenly across shards (hash
    routing spreads load closely enough for a per-shard share to behave like
    a global LRU in aggregate).  The other knobs apply per shard.
    """

    def __init__(
        self,
        directory: os.PathLike,
        shards: Optional[int] = 4,
        inline_limit: int = _INLINE_LIMIT,
        max_dead_bytes: Optional[int] = None,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ):
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        meta_path = self.directory / _SHARD_META_NAME
        if meta_path.exists():
            persisted = int(json.loads(meta_path.read_text())["shards"])
            if shards is not None and shards != persisted:
                logger.info(
                    "using persisted shard count %d for %s (requested %d)",
                    persisted,
                    self.directory,
                    shards,
                )
            shards = persisted
        else:
            shards = int(shards or 4)
            if shards < 1:
                raise ValueError("shard count must be >= 1")
            tmp = meta_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps({"shards": shards}) + "\n")
            os.replace(tmp, meta_path)
        self.inline_limit = inline_limit
        self.max_dead_bytes = max_dead_bytes
        self.max_bytes = max_bytes
        self.max_age_s = max_age_s
        per_shard_bytes = None if max_bytes is None else max(1, max_bytes // shards)
        self.shards = [
            PackedStore(
                self.directory / f"shard-{index:02d}",
                inline_limit=inline_limit,
                max_dead_bytes=max_dead_bytes,
                max_bytes=per_shard_bytes,
                max_age_s=max_age_s,
            )
            for index in range(shards)
        ]

    # -- pickling: worker processes reopen the shards lazily -------------
    def __getstate__(self):
        return {
            "directory": self.directory,
            "shards": len(self.shards),
            "inline_limit": self.inline_limit,
            "max_dead_bytes": self.max_dead_bytes,
            "max_bytes": self.max_bytes,
            "max_age_s": self.max_age_s,
        }

    def __setstate__(self, state):
        self.__init__(
            state["directory"],
            shards=state["shards"],
            inline_limit=state["inline_limit"],
            max_dead_bytes=state.get("max_dead_bytes"),
            max_bytes=state.get("max_bytes"),
            max_age_s=state.get("max_age_s"),
        )

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_index(self, key: str) -> int:
        """The shard a key routes to — a pure function of key and count."""
        try:
            return int(key[:8], 16) % len(self.shards)
        except ValueError:
            return zlib.crc32(key.encode("utf-8")) % len(self.shards)

    def shard_for(self, key: str) -> PackedStore:
        return self.shards[self.shard_index(key)]

    # -- ResultCache-compatible surface ----------------------------------
    def lookup(self, key: str) -> Tuple[bool, Any]:
        return self.shard_for(key).lookup(key)

    def store(self, key: str, value: Any) -> None:
        self.shard_for(key).store(key, value)

    def store_many(self, items) -> None:
        groups: Dict[int, List[Tuple[str, Any]]] = {}
        for key, value in items:
            groups.setdefault(self.shard_index(key), []).append((key, value))
        for index, group in groups.items():
            self.shards[index].store_many(group)

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for shard in self.shards:
            stats = shard.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.stores += stats.stores
            total.evictions += stats.evictions
        return total

    def keys(self) -> List[str]:
        return sorted(key for shard in self.shards for key in shard.keys())

    def evict(self, key: str) -> bool:
        return self.shard_for(key).evict(key)

    def pin(self, key: str) -> bool:
        return self.shard_for(key).pin(key)

    def unpin(self, key: str) -> None:
        self.shard_for(key).unpin(key)

    def pinned_keys(self) -> List[str]:
        return sorted(key for shard in self.shards for key in shard.pinned_keys())

    def release_record_pages(self, key: str) -> int:
        return self.shard_for(key).release_record_pages(key)

    def clear(self) -> int:
        return sum(shard.clear() for shard in self.shards)

    def compact(self) -> Tuple[int, int]:
        kept = reclaimed = 0
        for shard in self.shards:
            shard_kept, shard_reclaimed = shard.compact()
            kept += shard_kept
            reclaimed += shard_reclaimed
        return kept, reclaimed

    def enforce_policy(self, now: Optional[float] = None) -> Dict[str, int]:
        total = {"age_evictions": 0, "lru_evictions": 0, "reclaimed_bytes": 0}
        for shard in self.shards:
            result = shard.enforce_policy(now)
            for name in total:
                total[name] += result[name]
        return total

    def last_access(self, key: str) -> Optional[float]:
        return self.shard_for(key).last_access(key)

    def live_bytes(self) -> int:
        return sum(shard.live_bytes() for shard in self.shards)

    def dead_bytes(self) -> int:
        return sum(shard.dead_bytes() for shard in self.shards)

    def file_sizes(self) -> Dict[str, int]:
        sizes = {"dat": 0, "idx": 0}
        for shard in self.shards:
            for name, size in shard.file_sizes().items():
                sizes[name] += size
        return sizes

    def lock_stats(self) -> Dict[str, float]:
        return {
            "acquisitions": sum(s._lock.acquisitions for s in self.shards),
            "wait_seconds": sum(s._lock.wait_seconds for s in self.shards),
        }

    def report(self) -> Dict[str, Any]:
        shard_reports = [shard.report() for shard in self.shards]
        stats = self.stats
        return {
            "num_shards": len(self.shards),
            "entries": sum(r["entries"] for r in shard_reports),
            "pinned": sum(r["pinned"] for r in shard_reports),
            "file_sizes": self.file_sizes(),
            "live_bytes": sum(r["live_bytes"] for r in shard_reports),
            "dead_bytes": sum(r["dead_bytes"] for r in shard_reports),
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "stores": stats.stores,
                "evictions": stats.evictions,
            },
            "policy": {
                name: sum(r["policy"][name] for r in shard_reports)
                for name in ("age_evictions", "lru_evictions", "policy_compactions")
            },
            "lock": self.lock_stats(),
            "shards": shard_reports,
        }

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


# ----------------------------------------------------------------------
# Factory + migration
# ----------------------------------------------------------------------
def open_result_store(
    directory: os.PathLike,
    fmt: str = "auto",
    shards: Optional[int] = None,
    **kwargs,
):
    """Open a result store of the requested format.

    ``"npz"`` → per-entry :class:`ResultCache`; ``"packed"`` →
    :class:`PackedStore`; ``"sharded"`` → :class:`ShardedPackedStore`;
    ``"auto"`` → whatever the directory already holds (``shards.json`` →
    sharded, ``store.dat`` → packed, otherwise npz — unless ``shards > 1``
    asks for a new sharded store).  Extra keyword arguments
    (``max_dead_bytes``, ``max_bytes``, ``max_age_s``, ``inline_limit``)
    are forwarded to the packed layouts and ignored for npz.
    """
    directory = Path(directory).expanduser()
    if fmt == "auto":
        if (directory / _SHARD_META_NAME).exists():
            fmt = "sharded"
        elif (directory / _DATA_NAME).exists():
            fmt = "packed"
        elif shards is not None and shards > 1:
            fmt = "sharded"
        else:
            fmt = "npz"
    if fmt == "npz":
        return ResultCache(directory)
    if fmt == "packed":
        return PackedStore(directory, **kwargs)
    if fmt == "sharded":
        return ShardedPackedStore(directory, shards=shards, **kwargs)
    raise ValueError(
        f"unknown store format {fmt!r} (use 'npz', 'packed', 'sharded' or 'auto')"
    )


def migrate_npz_cache(source: os.PathLike, destination: os.PathLike) -> int:
    """Copy every entry of a per-entry ``.npz`` cache into a packed store.

    Unreadable source entries are skipped (they would have been evicted on
    their next lookup anyway).  Returns the number of entries migrated.  The
    destination may equal the source directory: the packed files
    (``store.dat`` / ``store.idx``) coexist with the npz fan-out dirs, and
    ``open_result_store(..., "auto")`` prefers the packed layout afterwards.
    """
    cache = ResultCache(source)
    store = PackedStore(destination)
    migrated = 0
    for key in cache.keys():
        hit, value = cache.lookup(key)
        if not hit:
            continue
        store.store(key, value)
        migrated += 1
    return migrated


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.runtime.store`` — migrate / compact / stats."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.store",
        description="Maintain packed result stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    migrate = sub.add_parser("migrate", help="convert an .npz cache dir to a packed store")
    migrate.add_argument("source", type=Path)
    migrate.add_argument("destination", type=Path)
    compact = sub.add_parser("compact", help="rewrite store.dat dropping dead records")
    compact.add_argument("directory", type=Path)
    stats = sub.add_parser("stats", help="print entry count and file sizes")
    stats.add_argument("directory", type=Path)
    args = parser.parse_args(argv)

    if args.command == "migrate":
        migrated = migrate_npz_cache(args.source, args.destination)
        print(f"migrated {migrated} entries from {args.source} to {args.destination}")
    elif args.command == "compact":
        store = open_result_store(args.directory, "auto")
        if not isinstance(store, (PackedStore, ShardedPackedStore)):
            print(f"{args.directory} is not a packed store")
            return 1
        kept, reclaimed = store.compact()
        print(f"compacted {args.directory}: {kept} entries kept, {reclaimed} bytes reclaimed")
    elif args.command == "stats":
        store = open_result_store(args.directory, "auto")
        if isinstance(store, (PackedStore, ShardedPackedStore)):
            print(json.dumps(store.report(), indent=2, sort_keys=True))
        else:
            print(f"{args.directory}: {len(store.keys())} npz entries")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
