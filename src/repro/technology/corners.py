"""Process corners for the synthetic technology.

Corners are modeled the way cell-characterization flows usually treat them:
fast devices have lower threshold voltages and higher mobility, slow devices
the opposite.  The corner set is the usual five-point set (TT, FF, SS, FS,
SF).  Corners are not required for any of the paper's experiments, but the
characterization flow accepts any :class:`~repro.technology.process.Technology`
so corner libraries can be characterized the same way as typical ones; the
corner sweep is exercised by the extended tests and by one ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from .process import Technology

__all__ = ["Corner", "STANDARD_CORNERS", "apply_corner", "corner_sweep"]


@dataclass(frozen=True)
class Corner:
    """A process corner described by threshold shifts and mobility scales.

    Attributes
    ----------
    name:
        Corner name such as ``"TT"`` or ``"FS"`` (NMOS letter first).
    nmos_vt_shift / pmos_vt_shift:
        Additive threshold-voltage shift in volts (negative = faster).
    nmos_kp_scale / pmos_kp_scale:
        Multiplicative transconductance scale (> 1 = faster).
    vdd_scale:
        Multiplicative supply scale (1.0 for nominal supply).
    """

    name: str
    nmos_vt_shift: float = 0.0
    pmos_vt_shift: float = 0.0
    nmos_kp_scale: float = 1.0
    pmos_kp_scale: float = 1.0
    vdd_scale: float = 1.0


#: The standard five process corners with 130 nm-like spreads.
STANDARD_CORNERS: Dict[str, Corner] = {
    "TT": Corner("TT"),
    "FF": Corner("FF", nmos_vt_shift=-0.04, pmos_vt_shift=-0.04,
                 nmos_kp_scale=1.12, pmos_kp_scale=1.12),
    "SS": Corner("SS", nmos_vt_shift=+0.04, pmos_vt_shift=+0.04,
                 nmos_kp_scale=0.88, pmos_kp_scale=0.88),
    "FS": Corner("FS", nmos_vt_shift=-0.04, pmos_vt_shift=+0.04,
                 nmos_kp_scale=1.12, pmos_kp_scale=0.88),
    "SF": Corner("SF", nmos_vt_shift=+0.04, pmos_vt_shift=-0.04,
                 nmos_kp_scale=0.88, pmos_kp_scale=1.12),
}


def apply_corner(technology: Technology, corner: Corner) -> Technology:
    """Return a new technology with the corner's shifts applied."""
    nmos = technology.nmos.scaled(corner.nmos_vt_shift, corner.nmos_kp_scale)
    pmos = technology.pmos.scaled(corner.pmos_vt_shift, corner.pmos_kp_scale)
    shifted = technology.with_devices(nmos, pmos, suffix=corner.name)
    if corner.vdd_scale != 1.0:
        from dataclasses import replace

        shifted = replace(shifted, vdd=shifted.vdd * corner.vdd_scale)
    return shifted


def corner_sweep(technology: Technology, corners: Iterable[str] = ("TT", "FF", "SS")) -> Dict[str, Technology]:
    """Build a dictionary of corner name to cornered technology."""
    result: Dict[str, Technology] = {}
    for name in corners:
        if name not in STANDARD_CORNERS:
            raise KeyError(f"unknown corner {name!r}; available: {sorted(STANDARD_CORNERS)}")
        result[name] = apply_corner(technology, STANDARD_CORNERS[name])
    return result
