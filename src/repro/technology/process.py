"""Synthetic 130 nm technology definition.

The paper characterizes its cells in a 130 nm, 1.2 V technology.  We do not
have access to a foundry PDK, so :func:`default_technology` provides a
self-consistent set of EKV parameters with 130 nm-like magnitudes: |Vt| around
0.33 V, NMOS on-current of a few hundred microamperes per micron, PMOS roughly
2.2x weaker per unit width, oxide capacitance around 12 fF/um^2 and junction /
overlap parasitics of the order of 1 fF/um and 0.3 fF/um respectively.

Only relative behaviour matters for the reproduction (stack effect sizes,
model-vs-reference errors), and those are set by the circuit topologies and
the ratios encoded here rather than by absolute foundry numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .mosfet import MosfetParams

__all__ = ["Technology", "default_technology"]


@dataclass(frozen=True)
class Technology:
    """A complete device + supply description used by the whole library.

    Attributes
    ----------
    name:
        Human readable technology name (e.g. ``"generic-130nm"``).
    vdd:
        Nominal supply voltage in volts.
    temperature:
        Simulation temperature in kelvin (informational; the thermal voltage
        is carried by the device parameters).
    nmos / pmos:
        :class:`~repro.technology.mosfet.MosfetParams` for each polarity.
    min_width:
        Minimum drawn transistor width in metres.
    unit_nmos_width / unit_pmos_width:
        Widths of the NMOS / PMOS devices in a 1x (unit-drive) inverter.  Cell
        generators size their devices as multiples of these.
    """

    name: str
    vdd: float
    temperature: float
    nmos: MosfetParams
    pmos: MosfetParams
    min_width: float
    unit_nmos_width: float
    unit_pmos_width: float
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if not self.nmos.is_nmos:
            raise ValueError("Technology.nmos must have polarity +1")
        if not self.pmos.is_pmos:
            raise ValueError("Technology.pmos must have polarity -1")
        if self.unit_nmos_width <= 0 or self.unit_pmos_width <= 0:
            raise ValueError("unit device widths must be positive")

    @property
    def channel_length(self) -> float:
        """Drawn channel length shared by both polarities, in metres."""
        return self.nmos.default_length

    def params_for(self, polarity: str) -> MosfetParams:
        """Return device parameters for ``"nmos"`` or ``"pmos"``."""
        key = polarity.lower()
        if key in ("n", "nmos"):
            return self.nmos
        if key in ("p", "pmos"):
            return self.pmos
        raise ValueError(f"unknown device polarity {polarity!r}")

    def with_devices(self, nmos: MosfetParams, pmos: MosfetParams, suffix: str = "") -> "Technology":
        """Return a copy with replaced device parameters (used by corners)."""
        name = self.name + (f"-{suffix}" if suffix else "")
        return replace(self, name=name, nmos=nmos, pmos=pmos)


def default_technology() -> Technology:
    """Build the generic 130 nm / 1.2 V technology used throughout the repo."""
    length = 130e-9
    nmos = MosfetParams(
        polarity=+1,
        vt0=0.33,
        kp=430e-6,
        slope_factor=1.35,
        channel_length_modulation=0.06,
        cox_per_area=1.2e-2,
        overlap_cap_per_width=3.0e-10,
        junction_cap_per_width=9.0e-10,
        default_length=length,
    )
    pmos = MosfetParams(
        polarity=-1,
        vt0=0.33,
        kp=190e-6,
        slope_factor=1.40,
        channel_length_modulation=0.08,
        cox_per_area=1.2e-2,
        overlap_cap_per_width=3.0e-10,
        junction_cap_per_width=9.0e-10,
        default_length=length,
    )
    return Technology(
        name="generic-130nm",
        vdd=1.2,
        temperature=300.0,
        nmos=nmos,
        pmos=pmos,
        min_width=0.15e-6,
        unit_nmos_width=0.4e-6,
        unit_pmos_width=0.9e-6,
        metadata={"source": "synthetic 130nm-like parameters (see DESIGN.md)"},
    )
