"""EKV-style MOSFET compact model.

The reproduction needs a transistor-level "golden" simulator that plays the
role HSPICE plays in the paper.  For that we use a simplified EKV model
because it is described by a single smooth expression valid in all operating
regions (weak, moderate and strong inversion, conduction in both directions),
which keeps the Newton-Raphson iterations of the circuit simulator well
behaved and still reproduces the physical effects the paper relies on:

* stack (source-degeneration / body) effect through bulk-referenced voltages
  and the slope factor ``n``;
* channel-length modulation;
* gate-overlap (Miller) and junction capacitances.

The interpolation function is ``F(x) = ln(1 + exp(x / 2)) ** 2`` and the
drain current of an NMOS device is::

    Id = Is * (F((Vp - Vsb) / Ut) - F((Vp - Vdb) / Ut)) * (1 + lambda * |Vds|)

with ``Vp = (Vgb - Vt0) / n`` and ``Is = 2 n kp (W / L) Ut**2``.  PMOS devices
use the same equations with all terminal voltages mirrored about the bulk.

All voltages handed to this module are *bulk referenced*; the circuit layer
(:mod:`repro.spice.elements`) converts absolute node voltages before calling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "MosfetParams",
    "MosfetOperatingPoint",
    "MosfetBank",
    "ekv_interpolation",
    "ekv_interpolation_derivative",
    "drain_current",
    "drain_current_and_derivatives",
    "evaluate_many",
    "terminal_capacitances",
    "THERMAL_VOLTAGE",
]

#: Thermal voltage kT/q at 300 K, in volts.
THERMAL_VOLTAGE = 0.025852


def _smooth_abs(x: float, epsilon: float = 1e-3) -> float:
    """Smooth approximation of ``abs(x)`` with continuous derivative."""
    return math.sqrt(x * x + epsilon * epsilon)


def _smooth_abs_derivative(x: float, epsilon: float = 1e-3) -> float:
    return x / math.sqrt(x * x + epsilon * epsilon)


def _softplus(x: float) -> float:
    """Numerically safe ``ln(1 + exp(x))``."""
    if x > 40.0:
        return x
    if x < -40.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _sigmoid(x: float) -> float:
    """Numerically safe logistic function."""
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


def ekv_interpolation(x: float) -> float:
    """EKV interpolation function ``F(x) = ln(1 + exp(x / 2)) ** 2``.

    ``x`` is a normalized (thermal-voltage scaled) overdrive.  ``F`` tends to
    ``exp(x)`` in weak inversion (``x`` very negative) and to ``(x / 2) ** 2``
    in strong inversion.
    """
    sp = _softplus(x / 2.0)
    return sp * sp


def ekv_interpolation_derivative(x: float) -> float:
    """Derivative ``dF/dx`` of :func:`ekv_interpolation`."""
    return _softplus(x / 2.0) * _sigmoid(x / 2.0)


@dataclass(frozen=True)
class MosfetParams:
    """Parameters of one MOSFET device type (NMOS or PMOS).

    Attributes
    ----------
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    vt0:
        Zero-bias threshold voltage magnitude in volts (positive number for
        both polarities).
    kp:
        Transconductance parameter ``mu * Cox`` in A/V^2.
    slope_factor:
        EKV slope factor ``n`` (dimensionless, > 1); larger values model a
        stronger body effect.
    channel_length_modulation:
        ``lambda`` in 1/V.
    cox_per_area:
        Gate-oxide capacitance per unit area in F/m^2.
    overlap_cap_per_width:
        Gate-source / gate-drain overlap capacitance per metre of width (F/m).
    junction_cap_per_width:
        Source/drain junction capacitance to bulk per metre of width (F/m).
    default_length:
        Drawn channel length in metres used when a device does not specify one.
    """

    polarity: int
    vt0: float
    kp: float
    slope_factor: float
    channel_length_modulation: float
    cox_per_area: float
    overlap_cap_per_width: float
    junction_cap_per_width: float
    default_length: float
    thermal_voltage: float = THERMAL_VOLTAGE

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity}")
        for name in ("vt0", "kp", "slope_factor", "cox_per_area", "default_length"):
            if getattr(self, name) <= 0:
                raise ValueError(f"MosfetParams.{name} must be positive")

    @property
    def is_nmos(self) -> bool:
        return self.polarity > 0

    @property
    def is_pmos(self) -> bool:
        return self.polarity < 0

    def specific_current(self, width: float, length: float) -> float:
        """EKV specific current ``Is = 2 n kp (W/L) Ut**2`` in amperes."""
        ut = self.thermal_voltage
        return 2.0 * self.slope_factor * self.kp * (width / length) * ut * ut

    def scaled(self, vt_shift: float = 0.0, kp_scale: float = 1.0) -> "MosfetParams":
        """Return a copy with shifted threshold and scaled transconductance.

        Used by process corners (fast corners lower ``vt0`` and raise ``kp``).
        """
        return replace(self, vt0=self.vt0 + vt_shift, kp=self.kp * kp_scale)


@dataclass
class MosfetOperatingPoint:
    """Diagnostic operating-point record for one device evaluation."""

    drain_current: float
    pinch_off_voltage: float
    forward_current: float
    reverse_current: float
    gm: float = 0.0
    gds: float = 0.0
    gms: float = 0.0
    region: str = ""
    extras: Dict[str, float] = field(default_factory=dict)


def _bulk_referenced(
    params: MosfetParams, vg: float, vd: float, vs: float, vb: float
) -> Tuple[float, float, float]:
    """Return polarity-normalized, bulk-referenced (vgb, vdb, vsb)."""
    sign = float(params.polarity)
    return sign * (vg - vb), sign * (vd - vb), sign * (vs - vb)


def drain_current(
    params: MosfetParams, vg: float, vd: float, vs: float, vb: float
) -> float:
    """Drain current flowing from drain to source terminal, in amperes.

    Terminal voltages are absolute node voltages.  For PMOS devices the
    returned current is negative when the device conducts from source to
    drain (conventional PMOS pull-up operation), i.e. the sign convention is
    always "positive current enters the drain terminal".
    """
    current, _ = drain_current_and_derivatives(params, vg, vd, vs, vb)
    return current


def drain_current_and_derivatives(
    params: MosfetParams, vg: float, vd: float, vs: float, vb: float
) -> Tuple[float, Dict[str, float]]:
    """Drain current and its partial derivatives w.r.t. terminal voltages.

    Returns
    -------
    (id, derivs):
        ``id`` is the drain-terminal current (A).  ``derivs`` maps
        ``"vg"``, ``"vd"``, ``"vs"``, ``"vb"`` to the partial derivatives of
        that current with respect to the absolute terminal voltages (S).
    """
    ut = params.thermal_voltage
    sign = float(params.polarity)
    vgb, vdb, vsb = _bulk_referenced(params, vg, vd, vs, vb)

    vp = (vgb - params.vt0) / params.slope_factor
    xf = (vp - vsb) / ut
    xr = (vp - vdb) / ut
    i_f = ekv_interpolation(xf)
    i_r = ekv_interpolation(xr)
    df = ekv_interpolation_derivative(xf)
    dr = ekv_interpolation_derivative(xr)
    i_s = params.specific_current(params.default_length, params.default_length)
    return _assemble_current(params, sign, ut, vdb, vsb, i_f, i_r, df, dr, i_s)


def _assemble_current(
    params: MosfetParams,
    sign: float,
    ut: float,
    vdb: float,
    vsb: float,
    i_f: float,
    i_r: float,
    df: float,
    dr: float,
    i_s: float,
) -> Tuple[float, Dict[str, float]]:
    """Combine normalized forward/reverse currents into terminal current."""
    lam = params.channel_length_modulation
    vds = vdb - vsb
    clm = 1.0 + lam * _smooth_abs(vds)
    dclm_dvds = lam * _smooth_abs_derivative(vds)

    base = i_s * (i_f - i_r)
    current_pol = base * clm  # polarity-normalized drain current

    n = params.slope_factor
    # Partial derivatives of `base` in the polarity-normalized frame:
    #   d i_f / d vgb = df / (n * ut),  d i_f / d vsb = -df / ut
    #   d i_r / d vgb = dr / (n * ut),  d i_r / d vdb = -dr / ut
    dbase_dvg = i_s * (df - dr) / (n * ut)
    dbase_dvs = -i_s * df / ut
    dbase_dvd = i_s * dr / ut

    dcur_dvg = dbase_dvg * clm
    dcur_dvd = dbase_dvd * clm + base * dclm_dvds
    dcur_dvs = dbase_dvs * clm - base * dclm_dvds

    # Bulk derivative from the chain rule: vgb/vdb/vsb all move with -vb.
    dcur_dvb = -(dcur_dvg + dcur_dvd + dcur_dvs)

    # Convert to absolute-voltage derivatives: polarity-normalized voltages are
    # sign * (v_terminal - vb) and the physical drain current is sign *
    # current_pol, so the sign factors cancel for g/d/s derivatives.
    current = sign * current_pol
    derivs = {
        "vg": dcur_dvg,
        "vd": dcur_dvd,
        "vs": dcur_dvs,
        "vb": dcur_dvb,
    }
    return current, derivs


def drain_current_scaled_and_derivatives(
    params: MosfetParams,
    width: float,
    length: float,
    vg: float,
    vd: float,
    vs: float,
    vb: float,
) -> Tuple[float, Dict[str, float]]:
    """Drain current and derivatives for a device of given geometry.

    This is the entry point used by the circuit simulator.  The returned
    current follows the "positive into the drain terminal" convention for
    both polarities.
    """
    ut = params.thermal_voltage
    sign = float(params.polarity)
    vgb, vdb, vsb = _bulk_referenced(params, vg, vd, vs, vb)

    vp = (vgb - params.vt0) / params.slope_factor
    xf = (vp - vsb) / ut
    xr = (vp - vdb) / ut
    i_f = ekv_interpolation(xf)
    i_r = ekv_interpolation(xr)
    df = ekv_interpolation_derivative(xf)
    dr = ekv_interpolation_derivative(xr)
    i_s = params.specific_current(width, length)
    return _assemble_current(params, sign, ut, vdb, vsb, i_f, i_r, df, dr, i_s)


def operating_point(
    params: MosfetParams,
    width: float,
    length: float,
    vg: float,
    vd: float,
    vs: float,
    vb: float,
) -> MosfetOperatingPoint:
    """Compute a diagnostic operating point (current, gm, gds, region)."""
    current, derivs = drain_current_scaled_and_derivatives(
        params, width, length, vg, vd, vs, vb
    )
    ut = params.thermal_voltage
    sign = float(params.polarity)
    vgb, vdb, vsb = _bulk_referenced(params, vg, vd, vs, vb)
    vp = (vgb - params.vt0) / params.slope_factor
    i_f = ekv_interpolation((vp - vsb) / ut)
    i_r = ekv_interpolation((vp - vdb) / ut)
    overdrive = vgb - vsb - params.vt0
    if overdrive < -3 * ut:
        region = "cutoff"
    elif i_r > 0.05 * i_f:
        region = "linear"
    else:
        region = "saturation"
    return MosfetOperatingPoint(
        drain_current=current,
        pinch_off_voltage=vp,
        forward_current=i_f,
        reverse_current=i_r,
        gm=derivs["vg"],
        gds=derivs["vd"],
        gms=-derivs["vs"],
        region=region,
    )


class MosfetBank:
    """A fixed set of MOSFET devices evaluated as whole NumPy arrays.

    The circuit simulator linearizes every device at every Newton iteration;
    doing that one device at a time dominates the transient-analysis profile.
    A bank snapshots the per-device parameters into flat arrays once, after
    which :meth:`evaluate` computes the drain currents and all four terminal
    derivatives of *all* devices with ~20 vectorized operations, for a single
    bias vector or for a whole batch of bias vectors at once.
    """

    __slots__ = (
        "size",
        "_sign",
        "_vt0_over_n",
        "_half_inv_ut",
        "_lam",
        "_inv_n",
        "_i_s",
        "_over_nut",
        "_over_ut",
        "_eps_sq",
    )

    def __init__(self, devices: Sequence[Tuple[MosfetParams, float, float]]):
        """``devices`` is a sequence of ``(params, width, length)`` triples."""
        self.size = len(devices)
        self._sign = np.array([float(p.polarity) for p, _, _ in devices])
        n = np.array([p.slope_factor for p, _, _ in devices])
        ut = np.array([p.thermal_voltage for p, _, _ in devices])
        self._vt0_over_n = np.array([p.vt0 for p, _, _ in devices]) / n
        self._half_inv_ut = 0.5 / ut
        self._inv_n = 1.0 / n
        self._lam = np.array([p.channel_length_modulation for p, _, _ in devices])
        self._i_s = np.array([p.specific_current(w, l) for p, w, l in devices])
        self._over_nut = self._i_s / (n * ut)
        self._over_ut = self._i_s / ut
        self._eps_sq = 1e-3 ** 2  # epsilon of the smooth |Vds| of the scalar path

    def evaluate(
        self, vg: np.ndarray, vd: np.ndarray, vs: np.ndarray, vb: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Currents and derivatives of every device at the given bias.

        Parameters are arrays of shape ``(M,)`` or ``(B, M)`` for a batch of
        ``B`` independent bias points over the same ``M`` devices.

        Returns
        -------
        (current, derivs):
            ``current`` has the input shape; ``derivs`` has shape
            ``(..., 4, M)`` ordered ``vg, vd, vs, vb`` (same quantities as
            :func:`drain_current_and_derivatives`).  The derivative block is
            laid out so the MNA assembler can flatten it per bias point
            without transposition.
        """
        sign = self._sign
        vgb = sign * (vg - vb)
        vdb = sign * (vd - vb)
        vsb = sign * (vs - vb)

        # Forward (source) and reverse (drain) normalized overdrives are
        # pushed through softplus/sigmoid as one fused (..., 2, M) block:
        # softplus(x) = logaddexp(0, x), sigmoid(x) = (1 + tanh(x/2)) / 2.
        vp = vgb * self._inv_n - self._vt0_over_n
        x = np.empty(vgb.shape[:-1] + (2, vgb.shape[-1]))
        x[..., 0, :] = vp - vsb
        x[..., 1, :] = vp - vdb
        x *= self._half_inv_ut
        sp = np.logaddexp(0.0, x)
        interp = sp * sp
        dinterp = sp * (0.5 * (1.0 + np.tanh(0.5 * x)))
        i_f = interp[..., 0, :]
        i_r = interp[..., 1, :]
        df = dinterp[..., 0, :]
        dr = dinterp[..., 1, :]

        vds = vdb - vsb
        smooth = np.sqrt(vds * vds + self._eps_sq)
        clm = 1.0 + self._lam * smooth
        dclm_dvds = self._lam * (vds / smooth)

        base = self._i_s * (i_f - i_r)
        base_dclm = base * dclm_dvds

        derivs = np.empty(vgb.shape[:-1] + (4, vgb.shape[-1]))
        dvg = derivs[..., 0, :]
        np.multiply(self._over_nut * (df - dr), clm, out=dvg)
        dvd = derivs[..., 1, :]
        np.multiply(self._over_ut * dr, clm, out=dvd)
        dvd += base_dclm
        dvs = derivs[..., 2, :]
        np.multiply(self._over_ut * df, -clm, out=dvs)
        dvs -= base_dclm
        derivs[..., 3, :] = -(dvg + dvd + dvs)

        current = sign * (base * clm)
        return current, derivs


def evaluate_many(
    devices: Sequence[Tuple[MosfetParams, float, float]],
    vg: np.ndarray,
    vd: np.ndarray,
    vs: np.ndarray,
    vb: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot vectorized evaluation of many devices (see :class:`MosfetBank`).

    Callers that evaluate the same devices repeatedly (the MNA assembler)
    should hold on to a :class:`MosfetBank` instead to amortize the parameter
    gathering.
    """
    return MosfetBank(devices).evaluate(
        np.asarray(vg, dtype=float),
        np.asarray(vd, dtype=float),
        np.asarray(vs, dtype=float),
        np.asarray(vb, dtype=float),
    )


def terminal_capacitances(
    params: MosfetParams, width: float, length: float
) -> Dict[str, float]:
    """Lumped (bias-independent) parasitic capacitances of one device.

    Returns a mapping with keys ``"cgs"``, ``"cgd"``, ``"cgb"``, ``"cdb"``,
    ``"csb"`` in farads.  Half of the intrinsic gate-channel capacitance is
    assigned to each of source and drain, on top of the overlap terms; this is
    the classic Meyer partition and is accurate enough for the Miller and
    stack-charge effects the paper studies.
    """
    if width <= 0 or length <= 0:
        raise ValueError("device width and length must be positive")
    c_intrinsic = params.cox_per_area * width * length
    c_overlap = params.overlap_cap_per_width * width
    c_junction = params.junction_cap_per_width * width
    return {
        "cgs": 0.5 * c_intrinsic + c_overlap,
        "cgd": 0.5 * c_intrinsic + c_overlap,
        "cgb": 0.1 * c_intrinsic,
        "cdb": c_junction,
        "csb": c_junction,
    }
