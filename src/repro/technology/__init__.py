"""Device models and technology definitions.

This package provides the EKV-style MOSFET compact model and the synthetic
130 nm / 1.2 V technology that the transistor-level reference simulator
(:mod:`repro.spice`) and the cell library (:mod:`repro.cells`) are built on.
"""

from .corners import STANDARD_CORNERS, Corner, apply_corner, corner_sweep
from .mosfet import (
    THERMAL_VOLTAGE,
    MosfetOperatingPoint,
    MosfetParams,
    drain_current,
    drain_current_scaled_and_derivatives,
    ekv_interpolation,
    ekv_interpolation_derivative,
    operating_point,
    terminal_capacitances,
)
from .process import Technology, default_technology

__all__ = [
    "THERMAL_VOLTAGE",
    "MosfetOperatingPoint",
    "MosfetParams",
    "drain_current",
    "drain_current_scaled_and_derivatives",
    "ekv_interpolation",
    "ekv_interpolation_derivative",
    "operating_point",
    "terminal_capacitances",
    "Technology",
    "default_technology",
    "Corner",
    "STANDARD_CORNERS",
    "apply_corner",
    "corner_sweep",
]
