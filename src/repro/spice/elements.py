"""Circuit elements for the transistor-level reference simulator.

Every element is a small data object that knows which nodes it touches and
how to contribute (*stamp*) to a modified-nodal-analysis system.  Stamping is
performed through a :class:`Stamper` façade so the element code never deals
with matrix indices directly; the analysis engines
(:mod:`repro.spice.dc`, :mod:`repro.spice.transient`) own the index mapping.

Sign conventions
----------------
* Current sources: ``value > 0`` means current flows *from* ``node_plus``
  *through the source* to ``node_minus`` (it is extracted from ``node_plus``
  and injected into ``node_minus``).
* Voltage sources: the extra MNA unknown is the current entering the positive
  terminal from the circuit.  The convenience accessor used everywhere in the
  characterization code is "current delivered into the circuit at the
  positive terminal", which is the negative of that unknown.
* MOSFETs: the reported drain current is positive when conventional current
  enters the drain terminal (for both NMOS and PMOS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Sequence, Tuple

from ..exceptions import NetlistError
from ..technology.mosfet import (
    MosfetParams,
    drain_current_scaled_and_derivatives,
    terminal_capacitances,
)
from .sources import DCValue, Stimulus

__all__ = [
    "Stamper",
    "Element",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Mosfet",
]


class Stamper(Protocol):
    """Interface the analysis engines expose to elements while stamping."""

    def add_conductance(self, node_a: str, node_b: str, conductance: float) -> None:
        """Add a two-terminal conductance between ``node_a`` and ``node_b``."""

    def add_transconductance(
        self, out_plus: str, out_minus: str, ctrl_plus: str, ctrl_minus: str, gm: float
    ) -> None:
        """Add a voltage-controlled current-source linearization."""

    def add_current(self, node_from: str, node_to: str, current: float) -> None:
        """Add a constant current flowing from ``node_from`` to ``node_to``."""

    def voltage(self, node: str) -> float:
        """Present estimate of a node voltage (previous Newton iterate)."""


@dataclass
class Element:
    """Base class for all circuit elements."""

    name: str

    @property
    def nodes(self) -> Tuple[str, ...]:
        raise NotImplementedError

    @property
    def is_nonlinear(self) -> bool:
        return False

    def stamp(self, stamper: Stamper, time: float) -> None:
        """Stamp the element's resistive (non-capacitive) behaviour."""
        raise NotImplementedError

    def capacitor_branches(self) -> Sequence[Tuple[str, str, float]]:
        """Return (node_a, node_b, capacitance) branches owned by the element."""
        return ()


@dataclass
class Resistor(Element):
    """A linear resistor."""

    node_a: str = ""
    node_b: str = ""
    resistance: float = 1.0

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise NetlistError(f"resistor {self.name}: resistance must be positive")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.node_a, self.node_b)

    def stamp(self, stamper: Stamper, time: float) -> None:
        stamper.add_conductance(self.node_a, self.node_b, 1.0 / self.resistance)


@dataclass
class Capacitor(Element):
    """A linear capacitor.

    Capacitors do not stamp anything in DC; the transient engine turns each
    capacitor branch into a companion model.
    """

    node_a: str = ""
    node_b: str = ""
    capacitance: float = 1e-15

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise NetlistError(f"capacitor {self.name}: capacitance must be non-negative")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.node_a, self.node_b)

    def stamp(self, stamper: Stamper, time: float) -> None:
        return None

    def capacitor_branches(self) -> Sequence[Tuple[str, str, float]]:
        return ((self.node_a, self.node_b, self.capacitance),)


@dataclass
class VoltageSource(Element):
    """An independent voltage source with an optional time-dependent value."""

    node_plus: str = ""
    node_minus: str = "0"
    stimulus: Stimulus = field(default_factory=lambda: DCValue(0.0))

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.node_plus, self.node_minus)

    def value(self, time: float) -> float:
        return self.stimulus(time)

    def stamp(self, stamper: Stamper, time: float) -> None:
        # Voltage sources are stamped by the analysis engine itself because
        # they require an extra branch-current unknown.
        return None


@dataclass
class CurrentSource(Element):
    """An independent current source with an optional time-dependent value."""

    node_plus: str = ""
    node_minus: str = "0"
    stimulus: Stimulus = field(default_factory=lambda: DCValue(0.0))

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.node_plus, self.node_minus)

    def value(self, time: float) -> float:
        return self.stimulus(time)

    def stamp(self, stamper: Stamper, time: float) -> None:
        stamper.add_current(self.node_plus, self.node_minus, self.value(time))


@dataclass
class Mosfet(Element):
    """A four-terminal MOSFET using the EKV-style compact model.

    Attributes
    ----------
    drain, gate, source, bulk:
        Node names of the four terminals.
    params:
        Device-type parameters (:class:`~repro.technology.mosfet.MosfetParams`).
    width, length:
        Drawn geometry in metres.  ``length`` defaults to the technology's
        drawn length when left as ``None``.
    include_parasitics:
        When true (default) the device contributes its overlap, intrinsic and
        junction capacitances as capacitor branches, which is what produces
        the Miller coupling and internal-node charge storage the paper relies
        on.
    """

    drain: str = ""
    gate: str = ""
    source: str = ""
    bulk: str = ""
    params: Optional[MosfetParams] = None
    width: float = 1e-6
    length: Optional[float] = None
    include_parasitics: bool = True

    def __post_init__(self) -> None:
        if self.params is None:
            raise NetlistError(f"mosfet {self.name}: params are required")
        if self.width <= 0:
            raise NetlistError(f"mosfet {self.name}: width must be positive")
        if self.length is None:
            self.length = self.params.default_length
        if self.length <= 0:
            raise NetlistError(f"mosfet {self.name}: length must be positive")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.drain, self.gate, self.source, self.bulk)

    @property
    def is_nonlinear(self) -> bool:
        return True

    def evaluate(self, vg: float, vd: float, vs: float, vb: float) -> Tuple[float, Dict[str, float]]:
        """Drain current and terminal-voltage derivatives at a bias point."""
        assert self.params is not None and self.length is not None
        return drain_current_scaled_and_derivatives(
            self.params, self.width, self.length, vg, vd, vs, vb
        )

    def stamp(self, stamper: Stamper, time: float) -> None:
        vg = stamper.voltage(self.gate)
        vd = stamper.voltage(self.drain)
        vs = stamper.voltage(self.source)
        vb = stamper.voltage(self.bulk)
        current, derivs = self.evaluate(vg, vd, vs, vb)

        # Linearized companion: I(v) ~= I0 + sum_k g_k * (v_k - v_k0).
        # The current flows from drain to source through the channel.
        terminals = {"vg": self.gate, "vd": self.drain, "vs": self.source, "vb": self.bulk}
        equivalent = current
        for key, node in terminals.items():
            g = derivs[key]
            stamper.add_transconductance(self.drain, self.source, node, "0", g)
            equivalent -= g * stamper.voltage(node)
        stamper.add_current(self.drain, self.source, equivalent)

    def capacitor_branches(self) -> Sequence[Tuple[str, str, float]]:
        if not self.include_parasitics:
            return ()
        assert self.params is not None and self.length is not None
        caps = terminal_capacitances(self.params, self.width, self.length)
        return (
            (self.gate, self.source, caps["cgs"]),
            (self.gate, self.drain, caps["cgd"]),
            (self.gate, self.bulk, caps["cgb"]),
            (self.drain, self.bulk, caps["cdb"]),
            (self.source, self.bulk, caps["csb"]),
        )
