"""DC operating-point and DC-sweep analyses.

Besides the circuit-level analyses, this module exposes the batched damped
Newton iteration behind them for *any* small residual system:
:func:`newton_fixed_point_many` adapts a callable ``F(x), J(x)`` to the
:func:`~repro.spice.mna.newton_solve_many` engine, so non-circuit solvers —
notably the current-source-model DC settle in :mod:`repro.csm.dc` — reuse the
same active-subset bookkeeping, damping and convergence policy as the MNA
solver instead of growing their own Newton loop.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConvergenceError
from .elements import VoltageSource
from .mna import MNAAssembler, NewtonOptions, newton_solve, newton_solve_many
from .netlist import Circuit
from .results import OperatingPoint
from .sources import DCValue

__all__ = [
    "dc_operating_point",
    "dc_sweep",
    "DCAnalysis",
    "newton_fixed_point_many",
]


class _ResidualAssembler:
    """Duck-typed stand-in for :class:`~repro.spice.mna.MNAAssembler`.

    Presents a batch residual/Jacobian callable through the small interface
    :func:`~repro.spice.mna.newton_solve_many` actually consumes
    (``num_nodes``, ``build_many``, ``circuit.name``): the Newton engine
    solves ``J x_new = J x - F``, i.e. takes the standard damped step
    ``x - J^{-1} F``.  Per-run residual parameters ride in the ``vs_values``
    slot so the active-subset iteration subsets them alongside the solutions.
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]],
        size: int,
        name: str,
    ):
        self.fn = fn
        self.num_nodes = size
        self.circuit = SimpleNamespace(name=name)

    def build_many(self, solutions, vs_values, cs_values, cap_matrix=None, cap_rhs=None):
        residual, jacobian = self.fn(solutions, vs_values)
        rhs = np.einsum("bij,bj->bi", jacobian, solutions) - residual
        return jacobian, rhs


def newton_fixed_point_many(
    fn: Callable[..., Tuple[np.ndarray, np.ndarray]],
    initial: np.ndarray,
    params: Optional[np.ndarray] = None,
    options: Optional[NewtonOptions] = None,
    name: str = "fixed-point",
) -> np.ndarray:
    """Solve ``F(x) = 0`` for a batch of small independent systems.

    Parameters
    ----------
    fn:
        Callable mapping a candidate batch ``x`` of shape ``(B', n)`` and the
        matching parameter rows ``params`` of shape ``(B', k)`` to ``(F, J)``
        with ``F`` of shape ``(B', n)`` and ``J`` of shape ``(B', n, n)``.
        ``B'`` is the *active* subset of the batch, not necessarily the full
        ``B`` — runs leave the iteration as they converge — so any per-run
        constants must be passed through ``params``, never closed over by
        full-batch position.
    initial:
        ``(B, n)`` starting points (one per system).
    params:
        Optional ``(B, k)`` per-run parameter rows (``k = 0`` when omitted).
    options:
        Newton settings; every row of each system is treated as a "voltage"
        unknown (damped by ``damping_limit``, converged below
        ``voltage_tolerance``).
    name:
        Label used in convergence error messages.

    Raises :class:`~repro.exceptions.ConvergenceError` exactly like the MNA
    batch solver (``metadata["failed_runs"]`` lists the offending rows).
    """
    initial = np.asarray(initial, dtype=float)
    if initial.ndim != 2:
        raise ValueError("newton_fixed_point_many expects a (B, n) initial array")
    if params is None:
        params = np.zeros((initial.shape[0], 0))
    params = np.asarray(params, dtype=float)
    if params.ndim != 2 or params.shape[0] != initial.shape[0]:
        raise ValueError("params must be a (B, k) array matching the initial batch")
    assembler = _ResidualAssembler(fn, initial.shape[1], name)
    empty = np.zeros((initial.shape[0], 0))
    return newton_solve_many(assembler, initial, params, empty, options=options)


class DCAnalysis:
    """Reusable DC solver bound to one circuit.

    Re-using the analysis object across many operating points (as the
    characterization grid sweeps do) avoids re-building the MNA structure for
    every point and lets successive solves start from the previous solution,
    which greatly improves Newton robustness along a sweep.
    """

    def __init__(
        self,
        circuit: Circuit,
        gmin: float = 1e-12,
        options: Optional[NewtonOptions] = None,
    ):
        self.circuit = circuit
        self.assembler = MNAAssembler(circuit, gmin=gmin)
        self.options = options or NewtonOptions()
        self._last_solution: Optional[np.ndarray] = None

    def solve(
        self,
        time: float = 0.0,
        initial_guess: Optional[Dict[str, float]] = None,
        reuse_previous: bool = True,
    ) -> OperatingPoint:
        """Solve for the DC operating point.

        Parameters
        ----------
        time:
            The time at which time-dependent sources are evaluated (the DC
            point "at" that instant); 0.0 for a plain operating point.
        initial_guess:
            Optional node-voltage guesses to seed Newton.
        reuse_previous:
            Start from the previous solve's solution when available.
        """
        start = np.zeros(self.assembler.size)
        if reuse_previous and self._last_solution is not None:
            start = self._last_solution.copy()
        if initial_guess:
            for node, value in initial_guess.items():
                idx = self.assembler.index_of_node(node)
                if idx >= 0:
                    start[idx] = value

        solution = self._solve_with_gmin_stepping(start, time)
        self._last_solution = solution
        return OperatingPoint(
            voltages=self.assembler.voltages_from_solution(solution),
            branch_currents=self.assembler.branch_currents_from_solution(solution),
        )

    def _solve_with_gmin_stepping(self, start: np.ndarray, time: float) -> np.ndarray:
        try:
            return newton_solve(self.assembler, start, time, options=self.options)
        except ConvergenceError:
            pass

        # Gmin stepping: temporarily add large conductances to ground and
        # relax them geometrically, reusing each stage's solution as the next
        # stage's starting point.  This is the standard SPICE fallback.
        solution = start.copy()
        size = self.assembler.size
        num_nodes = self.assembler.num_nodes
        for gmin in (1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0.0):
            extra = np.zeros((size, size))
            for idx in range(num_nodes):
                extra[idx, idx] += gmin
            solution = newton_solve(
                self.assembler,
                solution,
                time,
                cap_matrix=extra,
                options=self.options,
            )
        return solution

    def solve_grid(
        self,
        source_value_sets: Sequence[Mapping[str, float]],
        chunk_size: int = 2048,
    ) -> List[OperatingPoint]:
        """Solve many DC points of the same circuit with batched Newton.

        Each entry of ``source_value_sets`` maps voltage-source names to the
        value that point applies; unlisted sources keep their present value.
        All points iterate in lockstep through :func:`newton_solve_many`
        (one batched ``np.linalg.solve`` per iteration); points that fail to
        converge in the batch fall back to the sequential gmin-stepped path.
        This is the workhorse behind the ``Io``/``I_N`` table characterization
        sweeps, which solve the same probe circuit at hundreds of bias points.
        """
        results: List[OperatingPoint] = []
        for start in range(0, len(source_value_sets), chunk_size):
            results.extend(self._solve_grid_chunk(source_value_sets[start : start + chunk_size]))
        return results

    def _solve_grid_chunk(
        self, source_value_sets: Sequence[Mapping[str, float]]
    ) -> List[OperatingPoint]:
        assembler = self.assembler
        batch = len(source_value_sets)
        vs = np.empty((batch, len(assembler.voltage_sources)))
        for j, source in enumerate(assembler.voltage_sources):
            default = source.value(0.0)
            column = [values.get(source.name, default) for values in source_value_sets]
            vs[:, j] = column
        cs = np.tile(
            np.array([source.value(0.0) for source in assembler.current_sources]),
            (batch, 1),
        )

        # Seed grounded forced nodes with their source value: Newton then
        # starts inside the damping range of the solution.
        guess = np.zeros((batch, assembler.size))
        for j, source in enumerate(assembler.voltage_sources):
            plus = assembler.index_of_node(source.node_plus)
            minus = assembler.index_of_node(source.node_minus)
            if plus >= 0 and minus < 0:
                guess[:, plus] = vs[:, j]

        failed: List[int] = []
        try:
            solutions = newton_solve_many(assembler, guess, vs, cs, options=self.options)
        except ConvergenceError as exc:
            metadata = getattr(exc, "metadata", None) or {}
            solutions = metadata.get("solutions")
            failed = list(metadata.get("failed_runs", range(batch)))
            if solutions is None:
                solutions = guess

        if failed:
            saved = {s.name: s.stimulus for s in assembler.voltage_sources}
            try:
                for position in failed:
                    values = source_value_sets[position]
                    for source in assembler.voltage_sources:
                        if source.name in values:
                            self.set_source_value(source.name, values[source.name])
                    solutions[position] = self._solve_with_gmin_stepping(
                        solutions[position].copy(), time=0.0
                    )
            finally:
                for source in assembler.voltage_sources:
                    source.stimulus = saved[source.name]

        return [
            OperatingPoint(
                voltages=assembler.voltages_from_solution(solution),
                branch_currents=assembler.branch_currents_from_solution(solution),
            )
            for solution in solutions
        ]

    def set_source_value(self, source_name: str, value: float) -> None:
        """Update the DC value of a voltage source in-place (sweep helper)."""
        element = self.circuit.element(source_name)
        if not isinstance(element, VoltageSource):
            raise TypeError(f"{source_name!r} is not a voltage source")
        element.stimulus = DCValue(float(value))


def dc_operating_point(
    circuit: Circuit,
    gmin: float = 1e-12,
    initial_guess: Optional[Dict[str, float]] = None,
    options: Optional[NewtonOptions] = None,
) -> OperatingPoint:
    """One-shot DC operating point of a circuit."""
    analysis = DCAnalysis(circuit, gmin=gmin, options=options)
    return analysis.solve(initial_guess=initial_guess)


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float],
    gmin: float = 1e-12,
    options: Optional[NewtonOptions] = None,
) -> List[OperatingPoint]:
    """Sweep the DC value of one voltage source and solve at each point."""
    analysis = DCAnalysis(circuit, gmin=gmin, options=options)
    results: List[OperatingPoint] = []
    for value in values:
        analysis.set_source_value(source_name, value)
        results.append(analysis.solve())
    return results
