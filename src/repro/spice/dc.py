"""DC operating-point and DC-sweep analyses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .elements import VoltageSource
from .mna import MNAAssembler, NewtonOptions, newton_solve
from .netlist import Circuit
from .results import OperatingPoint
from .sources import DCValue

__all__ = ["dc_operating_point", "dc_sweep", "DCAnalysis"]


class DCAnalysis:
    """Reusable DC solver bound to one circuit.

    Re-using the analysis object across many operating points (as the
    characterization grid sweeps do) avoids re-building the MNA structure for
    every point and lets successive solves start from the previous solution,
    which greatly improves Newton robustness along a sweep.
    """

    def __init__(
        self,
        circuit: Circuit,
        gmin: float = 1e-12,
        options: Optional[NewtonOptions] = None,
    ):
        self.circuit = circuit
        self.assembler = MNAAssembler(circuit, gmin=gmin)
        self.options = options or NewtonOptions()
        self._last_solution: Optional[np.ndarray] = None

    def solve(
        self,
        time: float = 0.0,
        initial_guess: Optional[Dict[str, float]] = None,
        reuse_previous: bool = True,
    ) -> OperatingPoint:
        """Solve for the DC operating point.

        Parameters
        ----------
        time:
            The time at which time-dependent sources are evaluated (the DC
            point "at" that instant); 0.0 for a plain operating point.
        initial_guess:
            Optional node-voltage guesses to seed Newton.
        reuse_previous:
            Start from the previous solve's solution when available.
        """
        start = np.zeros(self.assembler.size)
        if reuse_previous and self._last_solution is not None:
            start = self._last_solution.copy()
        if initial_guess:
            for node, value in initial_guess.items():
                idx = self.assembler.index_of_node(node)
                if idx >= 0:
                    start[idx] = value

        solution = self._solve_with_gmin_stepping(start, time)
        self._last_solution = solution
        return OperatingPoint(
            voltages=self.assembler.voltages_from_solution(solution),
            branch_currents=self.assembler.branch_currents_from_solution(solution),
        )

    def _solve_with_gmin_stepping(self, start: np.ndarray, time: float) -> np.ndarray:
        try:
            return newton_solve(self.assembler, start, time, options=self.options)
        except ConvergenceError:
            pass

        # Gmin stepping: temporarily add large conductances to ground and
        # relax them geometrically, reusing each stage's solution as the next
        # stage's starting point.  This is the standard SPICE fallback.
        solution = start.copy()
        size = self.assembler.size
        num_nodes = self.assembler.num_nodes
        for gmin in (1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0.0):
            extra = np.zeros((size, size))
            for idx in range(num_nodes):
                extra[idx, idx] += gmin
            solution = newton_solve(
                self.assembler,
                solution,
                time,
                cap_matrix=extra,
                options=self.options,
            )
        return solution

    def set_source_value(self, source_name: str, value: float) -> None:
        """Update the DC value of a voltage source in-place (sweep helper)."""
        element = self.circuit.element(source_name)
        if not isinstance(element, VoltageSource):
            raise TypeError(f"{source_name!r} is not a voltage source")
        element.stimulus = DCValue(float(value))


def dc_operating_point(
    circuit: Circuit,
    gmin: float = 1e-12,
    initial_guess: Optional[Dict[str, float]] = None,
    options: Optional[NewtonOptions] = None,
) -> OperatingPoint:
    """One-shot DC operating point of a circuit."""
    analysis = DCAnalysis(circuit, gmin=gmin, options=options)
    return analysis.solve(initial_guess=initial_guess)


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float],
    gmin: float = 1e-12,
    options: Optional[NewtonOptions] = None,
) -> List[OperatingPoint]:
    """Sweep the DC value of one voltage source and solve at each point."""
    analysis = DCAnalysis(circuit, gmin=gmin, options=options)
    results: List[OperatingPoint] = []
    for value in values:
        analysis.set_source_value(source_name, value)
        results.append(analysis.solve())
    return results
