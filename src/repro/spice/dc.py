"""DC operating-point and DC-sweep analyses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .elements import VoltageSource
from .mna import MNAAssembler, NewtonOptions, newton_solve, newton_solve_many
from .netlist import Circuit
from .results import OperatingPoint
from .sources import DCValue

__all__ = ["dc_operating_point", "dc_sweep", "DCAnalysis"]


class DCAnalysis:
    """Reusable DC solver bound to one circuit.

    Re-using the analysis object across many operating points (as the
    characterization grid sweeps do) avoids re-building the MNA structure for
    every point and lets successive solves start from the previous solution,
    which greatly improves Newton robustness along a sweep.
    """

    def __init__(
        self,
        circuit: Circuit,
        gmin: float = 1e-12,
        options: Optional[NewtonOptions] = None,
    ):
        self.circuit = circuit
        self.assembler = MNAAssembler(circuit, gmin=gmin)
        self.options = options or NewtonOptions()
        self._last_solution: Optional[np.ndarray] = None

    def solve(
        self,
        time: float = 0.0,
        initial_guess: Optional[Dict[str, float]] = None,
        reuse_previous: bool = True,
    ) -> OperatingPoint:
        """Solve for the DC operating point.

        Parameters
        ----------
        time:
            The time at which time-dependent sources are evaluated (the DC
            point "at" that instant); 0.0 for a plain operating point.
        initial_guess:
            Optional node-voltage guesses to seed Newton.
        reuse_previous:
            Start from the previous solve's solution when available.
        """
        start = np.zeros(self.assembler.size)
        if reuse_previous and self._last_solution is not None:
            start = self._last_solution.copy()
        if initial_guess:
            for node, value in initial_guess.items():
                idx = self.assembler.index_of_node(node)
                if idx >= 0:
                    start[idx] = value

        solution = self._solve_with_gmin_stepping(start, time)
        self._last_solution = solution
        return OperatingPoint(
            voltages=self.assembler.voltages_from_solution(solution),
            branch_currents=self.assembler.branch_currents_from_solution(solution),
        )

    def _solve_with_gmin_stepping(self, start: np.ndarray, time: float) -> np.ndarray:
        try:
            return newton_solve(self.assembler, start, time, options=self.options)
        except ConvergenceError:
            pass

        # Gmin stepping: temporarily add large conductances to ground and
        # relax them geometrically, reusing each stage's solution as the next
        # stage's starting point.  This is the standard SPICE fallback.
        solution = start.copy()
        size = self.assembler.size
        num_nodes = self.assembler.num_nodes
        for gmin in (1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0.0):
            extra = np.zeros((size, size))
            for idx in range(num_nodes):
                extra[idx, idx] += gmin
            solution = newton_solve(
                self.assembler,
                solution,
                time,
                cap_matrix=extra,
                options=self.options,
            )
        return solution

    def solve_grid(
        self,
        source_value_sets: Sequence[Mapping[str, float]],
        chunk_size: int = 2048,
    ) -> List[OperatingPoint]:
        """Solve many DC points of the same circuit with batched Newton.

        Each entry of ``source_value_sets`` maps voltage-source names to the
        value that point applies; unlisted sources keep their present value.
        All points iterate in lockstep through :func:`newton_solve_many`
        (one batched ``np.linalg.solve`` per iteration); points that fail to
        converge in the batch fall back to the sequential gmin-stepped path.
        This is the workhorse behind the ``Io``/``I_N`` table characterization
        sweeps, which solve the same probe circuit at hundreds of bias points.
        """
        results: List[OperatingPoint] = []
        for start in range(0, len(source_value_sets), chunk_size):
            results.extend(self._solve_grid_chunk(source_value_sets[start : start + chunk_size]))
        return results

    def _solve_grid_chunk(
        self, source_value_sets: Sequence[Mapping[str, float]]
    ) -> List[OperatingPoint]:
        assembler = self.assembler
        batch = len(source_value_sets)
        vs = np.empty((batch, len(assembler.voltage_sources)))
        for j, source in enumerate(assembler.voltage_sources):
            default = source.value(0.0)
            column = [values.get(source.name, default) for values in source_value_sets]
            vs[:, j] = column
        cs = np.tile(
            np.array([source.value(0.0) for source in assembler.current_sources]),
            (batch, 1),
        )

        # Seed grounded forced nodes with their source value: Newton then
        # starts inside the damping range of the solution.
        guess = np.zeros((batch, assembler.size))
        for j, source in enumerate(assembler.voltage_sources):
            plus = assembler.index_of_node(source.node_plus)
            minus = assembler.index_of_node(source.node_minus)
            if plus >= 0 and minus < 0:
                guess[:, plus] = vs[:, j]

        failed: List[int] = []
        try:
            solutions = newton_solve_many(assembler, guess, vs, cs, options=self.options)
        except ConvergenceError as exc:
            metadata = getattr(exc, "metadata", None) or {}
            solutions = metadata.get("solutions")
            failed = list(metadata.get("failed_runs", range(batch)))
            if solutions is None:
                solutions = guess

        if failed:
            saved = {s.name: s.stimulus for s in assembler.voltage_sources}
            try:
                for position in failed:
                    values = source_value_sets[position]
                    for source in assembler.voltage_sources:
                        if source.name in values:
                            self.set_source_value(source.name, values[source.name])
                    solutions[position] = self._solve_with_gmin_stepping(
                        solutions[position].copy(), time=0.0
                    )
            finally:
                for source in assembler.voltage_sources:
                    source.stimulus = saved[source.name]

        return [
            OperatingPoint(
                voltages=assembler.voltages_from_solution(solution),
                branch_currents=assembler.branch_currents_from_solution(solution),
            )
            for solution in solutions
        ]

    def set_source_value(self, source_name: str, value: float) -> None:
        """Update the DC value of a voltage source in-place (sweep helper)."""
        element = self.circuit.element(source_name)
        if not isinstance(element, VoltageSource):
            raise TypeError(f"{source_name!r} is not a voltage source")
        element.stimulus = DCValue(float(value))


def dc_operating_point(
    circuit: Circuit,
    gmin: float = 1e-12,
    initial_guess: Optional[Dict[str, float]] = None,
    options: Optional[NewtonOptions] = None,
) -> OperatingPoint:
    """One-shot DC operating point of a circuit."""
    analysis = DCAnalysis(circuit, gmin=gmin, options=options)
    return analysis.solve(initial_guess=initial_guess)


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float],
    gmin: float = 1e-12,
    options: Optional[NewtonOptions] = None,
) -> List[OperatingPoint]:
    """Sweep the DC value of one voltage source and solve at each point."""
    analysis = DCAnalysis(circuit, gmin=gmin, options=options)
    results: List[OperatingPoint] = []
    for value in values:
        analysis.set_source_value(source_name, value)
        results.append(analysis.solve())
    return results
