"""Result containers for DC and transient analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["OperatingPoint", "TransientResult"]


@dataclass
class OperatingPoint:
    """The solution of a DC analysis.

    Attributes
    ----------
    voltages:
        Node name to node voltage (V), ground included.
    branch_currents:
        Voltage-source name to the current entering its positive terminal
        from the circuit (A).
    iterations:
        Newton iterations that were needed (informational).
    """

    voltages: Dict[str, float]
    branch_currents: Dict[str, float]
    iterations: int = 0
    metadata: Dict[str, float] = field(default_factory=dict)

    def voltage(self, node: str) -> float:
        """Voltage of a node, accepting the usual ground aliases."""
        if node in self.voltages:
            return self.voltages[node]
        if node in ("gnd", "vss", "GND", "VSS"):
            return self.voltages.get("0", 0.0)
        raise AnalysisError(f"node {node!r} is not part of this operating point")

    def source_current(self, source_name: str) -> float:
        """Current delivered *into the circuit* at the source's + terminal.

        This is the sign convention used by the characterization procedures:
        a positive value means the external source is pushing current into
        the node it drives.
        """
        if source_name not in self.branch_currents:
            raise AnalysisError(f"no voltage source named {source_name!r} in this result")
        return -self.branch_currents[source_name]


@dataclass
class TransientResult:
    """Waveform data produced by a transient analysis.

    Attributes
    ----------
    times:
        Monotonically increasing sample times (s).
    node_voltages:
        Node name to an array of voltages, aligned with ``times``.
    source_currents:
        Voltage-source name to an array of currents delivered into the
        circuit at its positive terminal, aligned with ``times``.
    """

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    source_currents: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        for key, values in list(self.node_voltages.items()):
            array = np.asarray(values, dtype=float)
            if array.shape != self.times.shape:
                raise AnalysisError(
                    f"voltage trace for node {key!r} has {array.size} samples, "
                    f"expected {self.times.size}"
                )
            self.node_voltages[key] = array

    @property
    def duration(self) -> float:
        """Total simulated time span in seconds."""
        return float(self.times[-1] - self.times[0]) if self.times.size else 0.0

    def voltage_trace(self, node: str) -> np.ndarray:
        if node in self.node_voltages:
            return self.node_voltages[node]
        if node in ("gnd", "vss", "GND", "VSS"):
            return np.zeros_like(self.times)
        raise AnalysisError(f"node {node!r} was not recorded in this transient result")

    def current_trace(self, source_name: str) -> np.ndarray:
        if source_name not in self.source_currents:
            raise AnalysisError(f"source {source_name!r} was not recorded in this transient result")
        return self.source_currents[source_name]

    def voltage_at(self, node: str, time: float) -> float:
        """Linearly interpolated node voltage at an arbitrary time."""
        trace = self.voltage_trace(node)
        return float(np.interp(time, self.times, trace))

    def final_voltage(self, node: str) -> float:
        return float(self.voltage_trace(node)[-1])

    def waveform(self, node: str):
        """Return the node voltage trace as a :class:`repro.waveform.Waveform`."""
        from ..waveform import Waveform  # imported lazily to avoid a cycle

        return Waveform(self.times.copy(), self.voltage_trace(node).copy(), name=node)

    def sample_nodes(self) -> Sequence[str]:
        return tuple(self.node_voltages)

    def slice(self, t_start: float, t_stop: Optional[float] = None) -> "TransientResult":
        """Return a copy restricted to ``t_start <= t <= t_stop``."""
        t_stop = self.times[-1] if t_stop is None else t_stop
        mask = (self.times >= t_start) & (self.times <= t_stop)
        return TransientResult(
            times=self.times[mask],
            node_voltages={k: v[mask] for k, v in self.node_voltages.items()},
            source_currents={k: v[mask] for k, v in self.source_currents.items()},
            metadata=dict(self.metadata),
        )
