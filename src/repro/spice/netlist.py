"""Circuit (netlist) container and convenience construction API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import NetlistError
from ..technology.mosfet import MosfetParams
from .elements import (
    Capacitor,
    CurrentSource,
    Element,
    Mosfet,
    Resistor,
    VoltageSource,
)
from .sources import DCValue, Stimulus

__all__ = ["GROUND", "Circuit"]

#: Name of the global reference node.  Both ``"0"`` and ``"gnd"`` are accepted
#: when building circuits; they are normalized to this constant.
GROUND = "0"

_GROUND_ALIASES = {"0", "gnd", "vss", "GND", "VSS"}


def _normalize_node(name: str) -> str:
    if name in _GROUND_ALIASES:
        return GROUND
    return name


@dataclass
class Circuit:
    """A flat transistor/RC-level circuit.

    The circuit holds elements and the set of nodes they reference.  The
    ground node is always present.  Node names are arbitrary strings; the
    aliases ``"gnd"`` and ``"vss"`` are normalized to ``"0"``.

    The convenience ``add_*`` methods return the created element so callers
    can keep a handle for later measurements (e.g. the current through a
    probing voltage source during characterization).
    """

    name: str = "circuit"
    elements: List[Element] = field(default_factory=list)
    _element_names: Dict[str, Element] = field(default_factory=dict, repr=False)
    _nodes: Dict[str, None] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._nodes.setdefault(GROUND, None)

    # ------------------------------------------------------------------
    # Node and element management
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """All node names, ground included, in insertion order."""
        return tuple(self._nodes)

    @property
    def non_ground_nodes(self) -> Tuple[str, ...]:
        return tuple(n for n in self._nodes if n != GROUND)

    def has_node(self, name: str) -> bool:
        return _normalize_node(name) in self._nodes

    def declare_node(self, name: str) -> str:
        """Register a node name (idempotent) and return its normalized form."""
        normalized = _normalize_node(name)
        self._nodes.setdefault(normalized, None)
        return normalized

    def add(self, element: Element) -> Element:
        """Add an already-constructed element, registering its nodes."""
        if element.name in self._element_names:
            raise NetlistError(f"duplicate element name {element.name!r} in circuit {self.name!r}")
        for node in element.nodes:
            self.declare_node(node)
        self.elements.append(element)
        self._element_names[element.name] = element
        return element

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        try:
            return self._element_names[name]
        except KeyError as exc:
            raise NetlistError(f"no element named {name!r} in circuit {self.name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._element_names

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    # ------------------------------------------------------------------
    # Element constructors
    # ------------------------------------------------------------------
    def _unique_name(self, prefix: str) -> str:
        index = len(self.elements)
        candidate = f"{prefix}{index}"
        while candidate in self._element_names:
            index += 1
            candidate = f"{prefix}{index}"
        return candidate

    def add_resistor(self, node_a: str, node_b: str, resistance: float, name: Optional[str] = None) -> Resistor:
        element = Resistor(
            name=name or self._unique_name("R"),
            node_a=_normalize_node(node_a),
            node_b=_normalize_node(node_b),
            resistance=resistance,
        )
        self.add(element)
        return element

    def add_capacitor(self, node_a: str, node_b: str, capacitance: float, name: Optional[str] = None) -> Capacitor:
        element = Capacitor(
            name=name or self._unique_name("C"),
            node_a=_normalize_node(node_a),
            node_b=_normalize_node(node_b),
            capacitance=capacitance,
        )
        self.add(element)
        return element

    def add_voltage_source(
        self,
        node_plus: str,
        node_minus: str = GROUND,
        value: float | Stimulus = 0.0,
        name: Optional[str] = None,
    ) -> VoltageSource:
        stimulus = value if isinstance(value, Stimulus) else DCValue(float(value))
        element = VoltageSource(
            name=name or self._unique_name("V"),
            node_plus=_normalize_node(node_plus),
            node_minus=_normalize_node(node_minus),
            stimulus=stimulus,
        )
        self.add(element)
        return element

    def add_current_source(
        self,
        node_plus: str,
        node_minus: str = GROUND,
        value: float | Stimulus = 0.0,
        name: Optional[str] = None,
    ) -> CurrentSource:
        stimulus = value if isinstance(value, Stimulus) else DCValue(float(value))
        element = CurrentSource(
            name=name or self._unique_name("I"),
            node_plus=_normalize_node(node_plus),
            node_minus=_normalize_node(node_minus),
            stimulus=stimulus,
        )
        self.add(element)
        return element

    def add_mosfet(
        self,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        params: MosfetParams,
        width: float,
        length: Optional[float] = None,
        name: Optional[str] = None,
        include_parasitics: bool = True,
    ) -> Mosfet:
        element = Mosfet(
            name=name or self._unique_name("M"),
            drain=_normalize_node(drain),
            gate=_normalize_node(gate),
            source=_normalize_node(source),
            bulk=_normalize_node(bulk),
            params=params,
            width=width,
            length=length,
            include_parasitics=include_parasitics,
        )
        self.add(element)
        return element

    # ------------------------------------------------------------------
    # Queries used by the analysis engines
    # ------------------------------------------------------------------
    def voltage_sources(self) -> List[VoltageSource]:
        return [e for e in self.elements if isinstance(e, VoltageSource)]

    def mosfets(self) -> List[Mosfet]:
        return [e for e in self.elements if isinstance(e, Mosfet)]

    def capacitor_branch_list(self) -> List[Tuple[str, str, float]]:
        """All capacitive branches, including MOSFET parasitics."""
        branches: List[Tuple[str, str, float]] = []
        for element in self.elements:
            branches.extend(element.capacitor_branches())
        return branches

    def total_capacitance_at(self, node: str) -> float:
        """Sum of capacitances attached to ``node`` (grounded-equivalent view)."""
        node = _normalize_node(node)
        total = 0.0
        for a, b, c in self.capacitor_branch_list():
            if node in (a, b):
                total += c
        return total

    def merge(self, other: "Circuit", prefix: str = "", node_map: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """Copy another circuit's elements into this one.

        Parameters
        ----------
        other:
            Circuit to copy from; it is not modified.
        prefix:
            Prefix applied to element names and to node names that are not in
            ``node_map`` (used to keep sub-circuit internals unique).
        node_map:
            Mapping from ``other``'s node names to names in this circuit
            (typically used to connect sub-circuit ports).

        Returns
        -------
        dict
            The complete node translation that was applied.
        """
        import copy as _copy

        node_map = dict(node_map or {})
        node_map.setdefault(GROUND, GROUND)

        def translate(node: str) -> str:
            if node in node_map:
                return node_map[node]
            translated = f"{prefix}{node}" if prefix else node
            node_map[node] = translated
            return translated

        for element in other.elements:
            clone = _copy.deepcopy(element)
            clone.name = f"{prefix}{element.name}" if prefix else element.name
            for attr in ("node_a", "node_b", "node_plus", "node_minus", "drain", "gate", "source", "bulk"):
                if hasattr(clone, attr):
                    setattr(clone, attr, translate(getattr(clone, attr)))
            self.add(clone)
        return node_map

    def summary(self) -> str:
        """One-line human-readable summary used in logs and reports."""
        kinds: Dict[str, int] = {}
        for element in self.elements:
            kinds[type(element).__name__] = kinds.get(type(element).__name__, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"Circuit {self.name!r}: {len(self._nodes) - 1} nodes + ground; {parts}"
