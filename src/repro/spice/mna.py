"""Modified nodal analysis (MNA) assembly and the Newton-Raphson solvers.

The assembler owns the mapping from node names / voltage-source branches to
matrix indices and knows how to build the linearized system ``G x = rhs`` at a
given candidate solution.  Both the DC and the transient engines reuse it; the
transient engine additionally passes pre-built capacitor companion terms.

Stamping is performed through precomputed COO-style index arrays rather than
per-element Python loops: at construction time the assembler enumerates, once,
every ``(row, column, derivative, sign)`` quadruple a MOSFET linearization can
touch and every node a capacitor or current-source branch scatters into.  A
build then reduces to one vectorized device evaluation
(:class:`~repro.technology.mosfet.MosfetBank`), one ``np.add.at`` scatter into
the matrix and one into the right-hand side.  The same index arrays serve a
single bias point or a whole batch of ``B`` bias points (shape ``(B, size)``),
which is what :func:`newton_solve_many` and the lockstep transient engine
build on.  Circuits without nonlinear devices expose ``is_linear`` so callers
can factorize the (then constant) matrix once and reuse the LU factors.

The system layout is::

    x = [ v_1 ... v_N | i_V1 ... i_VM ]

where ``v_k`` are non-ground node voltages and ``i_Vj`` is the current
entering the positive terminal of voltage source ``j`` from the circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.linalg import lu_factor, lu_solve
from scipy.linalg.lapack import dgesv as _dgesv

from ..exceptions import ConvergenceError, NetlistError
from ..technology.mosfet import MosfetBank
from .elements import CurrentSource, Mosfet, Resistor, VoltageSource
from .netlist import GROUND, Circuit

__all__ = ["MNAAssembler", "NewtonOptions", "newton_solve", "newton_solve_many"]


@dataclass
class NewtonOptions:
    """Settings for the Newton-Raphson iteration.

    Attributes
    ----------
    max_iterations:
        Hard iteration limit before declaring non-convergence.
    voltage_tolerance:
        Convergence threshold on the largest node-voltage update (V).
    current_tolerance:
        Convergence threshold on the largest branch-current update (A).
    damping_limit:
        Maximum node-voltage change applied per iteration (V); larger Newton
        steps are clipped, which is the usual way to keep exponential device
        models from overflowing.
    """

    max_iterations: int = 100
    voltage_tolerance: float = 1e-7
    current_tolerance: float = 1e-10
    damping_limit: float = 0.5


class MNAAssembler:
    """Builds linearized MNA systems for a fixed circuit topology."""

    def __init__(self, circuit: Circuit, gmin: float = 1e-12):
        self.circuit = circuit
        self.gmin = gmin
        self.node_index: Dict[str, int] = {}
        for node in circuit.non_ground_nodes:
            self.node_index[node] = len(self.node_index)
        self.num_nodes = len(self.node_index)

        self.voltage_sources: List[VoltageSource] = circuit.voltage_sources()
        self.branch_index: Dict[str, int] = {
            source.name: self.num_nodes + position
            for position, source in enumerate(self.voltage_sources)
        }
        self.size = self.num_nodes + len(self.voltage_sources)
        if self.size == 0:
            raise NetlistError(f"circuit {circuit.name!r} has no unknowns to solve for")

        self.mosfets: List[Mosfet] = circuit.mosfets()
        self._mosfet_indices: List[Tuple[int, int, int, int]] = [
            (
                self._index(m.drain),
                self._index(m.gate),
                self._index(m.source),
                self._index(m.bulk),
            )
            for m in self.mosfets
        ]
        self.current_sources: List[CurrentSource] = [
            e for e in circuit.elements if isinstance(e, CurrentSource)
        ]
        self._current_source_indices: List[Tuple[int, int]] = [
            (self._index(s.node_plus), self._index(s.node_minus)) for s in self.current_sources
        ]

        #: True when the circuit has no nonlinear (device) elements, i.e. the
        #: assembled matrix depends only on the topology and the time step.
        self.is_linear = not self.mosfets

        self._static_matrix = self._build_static_matrix()
        self._build_index_arrays()

    # ------------------------------------------------------------------
    def _index(self, node: str) -> int:
        """Matrix index of a node; ground maps to -1 (excluded)."""
        if node == GROUND:
            return -1
        try:
            return self.node_index[node]
        except KeyError as exc:
            raise NetlistError(f"node {node!r} not present in circuit {self.circuit.name!r}") from exc

    def index_of_node(self, node: str) -> int:
        """Public variant of :meth:`_index` used by the analysis engines."""
        return self._index(node)

    def _build_static_matrix(self) -> np.ndarray:
        matrix = np.zeros((self.size, self.size))
        # gmin from every node to ground keeps floating nodes solvable.
        for idx in range(self.num_nodes):
            matrix[idx, idx] += self.gmin
        for element in self.circuit.elements:
            if isinstance(element, Resistor):
                self._stamp_conductance(
                    matrix, self._index(element.node_a), self._index(element.node_b),
                    1.0 / element.resistance,
                )
        for source in self.voltage_sources:
            branch = self.branch_index[source.name]
            plus = self._index(source.node_plus)
            minus = self._index(source.node_minus)
            if plus >= 0:
                matrix[plus, branch] += 1.0
                matrix[branch, plus] += 1.0
            if minus >= 0:
                matrix[minus, branch] -= 1.0
                matrix[branch, minus] -= 1.0
        return matrix

    def _build_index_arrays(self) -> None:
        """Precompute every scatter/gather pattern a build needs.

        Gathers use a padded solution vector of length ``size + 1`` whose last
        entry is pinned to 0.0, so ground terminals index the pad instead of
        needing masks.  Scatters are flat (row-major) matrix indices with
        parallel sign / derivative-selector arrays, applied via ``np.add.at``
        (which accumulates duplicate indices, unlike fancy-index assignment).
        """
        size = self.size
        pad = size  # index of the zero-pinned pad entry in a padded solution

        def padded(idx: int) -> int:
            return idx if idx >= 0 else pad

        # -- MOSFET gather: terminal voltages as one (4, M) fancy index ------
        num_devices = len(self.mosfets)
        terminals = np.empty((4, num_devices), dtype=np.intp)
        for position, (d, g, s, b) in enumerate(self._mosfet_indices):
            terminals[:, position] = (padded(g), padded(d), padded(s), padded(b))
        self._m_terminals = terminals  # order: gate, drain, source, bulk
        self._bank = MosfetBank([(m.params, m.width, m.length) for m in self.mosfets])

        # -- MOSFET matrix scatter -------------------------------------------
        # The channel current flows drain -> source; its linearization stamps
        # +g into row ``drain`` and -g into row ``source`` for each of the four
        # controlling terminals (ground rows/columns are dropped).
        flat: List[int] = []
        take: List[int] = []  # derivative-selector * M + device (flat index)
        sign: List[float] = []
        rhs_idx: List[int] = []
        rhs_sign: List[float] = []
        rhs_dev: List[int] = []
        for position, (d, g, s, b) in enumerate(self._mosfet_indices):
            controls = (g, d, s, b)  # must match MosfetBank derivative order
            for row, row_sign in ((d, 1.0), (s, -1.0)):
                if row < 0:
                    continue
                for sel, ctrl in enumerate(controls):
                    if ctrl < 0:
                        continue
                    flat.append(row * size + ctrl)
                    take.append(sel * num_devices + position)
                    sign.append(row_sign)
            if d >= 0:
                rhs_idx.append(d)
                rhs_sign.append(-1.0)
                rhs_dev.append(position)
            if s >= 0:
                rhs_idx.append(s)
                rhs_sign.append(1.0)
                rhs_dev.append(position)
        self._stamp_flat = np.asarray(flat, dtype=np.intp)
        self._stamp_take = np.asarray(take, dtype=np.intp)
        self._stamp_sign = np.asarray(sign)
        self._rhs_idx = np.asarray(rhs_idx, dtype=np.intp)
        self._rhs_sign = np.asarray(rhs_sign)
        self._rhs_dev = np.asarray(rhs_dev, dtype=np.intp)

        # -- voltage-source branch rows --------------------------------------
        self._vs_branch = np.asarray(
            [self.branch_index[s.name] for s in self.voltage_sources], dtype=np.intp
        )

        # -- current-source scatter ------------------------------------------
        cs_idx: List[int] = []
        cs_sign: List[float] = []
        cs_pos: List[int] = []
        for position, (plus, minus) in enumerate(self._current_source_indices):
            if plus >= 0:
                cs_idx.append(plus)
                cs_sign.append(-1.0)
                cs_pos.append(position)
            if minus >= 0:
                cs_idx.append(minus)
                cs_sign.append(1.0)
                cs_pos.append(position)
        self._cs_idx = np.asarray(cs_idx, dtype=np.intp)
        self._cs_sign = np.asarray(cs_sign)
        self._cs_pos = np.asarray(cs_pos, dtype=np.intp)

        # -- capacitor branches ----------------------------------------------
        branches = [
            (self._index(a), self._index(b), c)
            for a, b, c in self.circuit.capacitor_branch_list()
            if c > 0.0
        ]
        self._cap_values = np.asarray([c for _, _, c in branches])
        self._cap_a = np.asarray([padded(a) for a, _, _ in branches], dtype=np.intp)
        self._cap_b = np.asarray([padded(b) for _, b, _ in branches], dtype=np.intp)
        cap_flat: List[int] = []
        cap_sign: List[float] = []
        cap_branch: List[int] = []
        cap_rhs_idx: List[int] = []
        cap_rhs_sign: List[float] = []
        cap_rhs_branch: List[int] = []
        for position, (a, b, _) in enumerate(branches):
            for row, col, s_ in ((a, a, 1.0), (b, b, 1.0), (a, b, -1.0), (b, a, -1.0)):
                if row >= 0 and col >= 0:
                    cap_flat.append(row * size + col)
                    cap_sign.append(s_)
                    cap_branch.append(position)
            if a >= 0:
                cap_rhs_idx.append(a)
                cap_rhs_sign.append(1.0)
                cap_rhs_branch.append(position)
            if b >= 0:
                cap_rhs_idx.append(b)
                cap_rhs_sign.append(-1.0)
                cap_rhs_branch.append(position)
        self._cap_flat = np.asarray(cap_flat, dtype=np.intp)
        self._cap_sign = np.asarray(cap_sign)
        self._cap_branch = np.asarray(cap_branch, dtype=np.intp)
        self._cap_rhs_idx = np.asarray(cap_rhs_idx, dtype=np.intp)
        self._cap_rhs_sign = np.asarray(cap_rhs_sign)
        self._cap_rhs_branch = np.asarray(cap_rhs_branch, dtype=np.intp)

        # Reusable padded-solution buffer for the unbatched build path, and a
        # grow-on-demand workspace (matrices / rhs / padded solutions) for the
        # batched path: newton iterations run thousands of times per
        # transient, so the allocations are hoisted out of the hot loop.  The
        # workspace is sized for the largest batch seen and sliced for smaller
        # ones, which is what lets the batched Newton solver shrink its
        # rebuilds to the active (non-converged) subset without reallocating.
        self._padded = np.zeros(size + 1)
        self._max_workspace: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def _workspace(self, batch: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        workspace = self._max_workspace
        if workspace is None or workspace[0].shape[0] < batch:
            workspace = (
                np.empty((batch, self.size, self.size)),
                np.empty((batch, self.size)),
                np.zeros((batch, self.size + 1)),
            )
            self._max_workspace = workspace
        return tuple(buffer[:batch] for buffer in workspace)

    @staticmethod
    def _stamp_conductance(matrix: np.ndarray, a: int, b: int, g: float) -> None:
        if a >= 0:
            matrix[a, a] += g
        if b >= 0:
            matrix[b, b] += g
        if a >= 0 and b >= 0:
            matrix[a, b] -= g
            matrix[b, a] -= g

    # ------------------------------------------------------------------
    def capacitor_companion_matrix(self, dt: float) -> np.ndarray:
        """Conductance contribution ``C / dt`` of all capacitive branches."""
        matrix = np.zeros((self.size, self.size))
        if len(self._cap_values):
            values = (self._cap_values / dt)[self._cap_branch] * self._cap_sign
            np.add.at(matrix.ravel(), self._cap_flat, values)
        return matrix

    def capacitor_companion_rhs(self, dt: float, previous: np.ndarray) -> np.ndarray:
        """Right-hand-side contribution of capacitor branches (backward Euler).

        ``previous`` may be a single solution vector ``(size,)`` or a batch
        ``(B, size)``; the result has the matching shape.
        """
        previous = np.asarray(previous, dtype=float)
        batched = previous.ndim == 2
        shape = previous.shape[:-1] + (self.size,)
        rhs = np.zeros(shape)
        if not len(self._cap_values):
            return rhs
        padded_shape = previous.shape[:-1] + (self.size + 1,)
        padded = np.zeros(padded_shape)
        padded[..., : self.size] = previous
        g_times_v = (self._cap_values / dt) * (
            padded[..., self._cap_a] - padded[..., self._cap_b]
        )
        contributions = self._cap_rhs_sign * g_times_v[..., self._cap_rhs_branch]
        if batched:
            batch = previous.shape[0]
            np.add.at(
                rhs,
                (np.arange(batch)[:, None], self._cap_rhs_idx[None, :]),
                contributions,
            )
        else:
            np.add.at(rhs, self._cap_rhs_idx, contributions)
        return rhs

    # ------------------------------------------------------------------
    def source_values_at(self, time: float) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate every voltage- and current-source stimulus at ``time``."""
        vs = np.array([source.value(time) for source in self.voltage_sources])
        cs = np.array([source.value(time) for source in self.current_sources])
        return vs, cs

    def build_rhs(
        self,
        cap_rhs: Optional[np.ndarray],
        vs_values: np.ndarray,
        cs_values: np.ndarray,
    ) -> np.ndarray:
        """Right-hand side without the nonlinear (solution-dependent) terms."""
        rhs = np.zeros(self.size) if cap_rhs is None else cap_rhs.copy()
        if len(self._vs_branch):
            rhs[self._vs_branch] += vs_values
        if len(self._cs_idx):
            np.add.at(rhs, self._cs_idx, self._cs_sign * cs_values[self._cs_pos])
        return rhs

    def build(
        self,
        solution: np.ndarray,
        time: float,
        cap_matrix: Optional[np.ndarray] = None,
        cap_rhs: Optional[np.ndarray] = None,
        base_matrix: Optional[np.ndarray] = None,
        source_values: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the linearized system around ``solution`` at ``time``.

        ``base_matrix`` (when given) must equal ``static + cap_matrix``; the
        transient engine caches it per time step so the per-iteration cost is
        one copy.  ``source_values`` optionally carries pre-evaluated
        ``(voltage_source_values, current_source_values)`` so stimuli are not
        re-evaluated on every Newton iteration.
        """
        if base_matrix is not None:
            matrix = base_matrix.copy()
        else:
            matrix = self._static_matrix.copy()
            if cap_matrix is not None:
                matrix += cap_matrix

        if source_values is None:
            source_values = self.source_values_at(time)
        rhs = self.build_rhs(cap_rhs, *source_values)

        if self.mosfets:
            padded = self._padded
            padded[: self.size] = solution
            voltages = padded[self._m_terminals]  # (4, M): vg, vd, vs, vb
            current, derivs = self._bank.evaluate(
                voltages[0], voltages[1], voltages[2], voltages[3]
            )
            flat_derivs = derivs.reshape(-1)
            np.add.at(
                matrix.ravel(),
                self._stamp_flat,
                self._stamp_sign * flat_derivs[self._stamp_take],
            )
            equivalent = current - np.einsum("km,km->m", derivs, voltages)
            np.add.at(rhs, self._rhs_idx, self._rhs_sign * equivalent[self._rhs_dev])

        return matrix, rhs

    def build_many(
        self,
        solutions: np.ndarray,
        vs_values: np.ndarray,
        cs_values: np.ndarray,
        cap_matrix: Optional[np.ndarray] = None,
        cap_rhs: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble ``B`` linearized systems at once.

        Parameters
        ----------
        solutions:
            Candidate solutions, shape ``(B, size)``.
        vs_values / cs_values:
            Per-run source values, shapes ``(B, num_voltage_sources)`` and
            ``(B, num_current_sources)``.
        cap_matrix:
            Shared companion-conductance matrix (same topology and dt for all
            runs), or ``None`` for DC.
        cap_rhs:
            Per-run companion right-hand sides, shape ``(B, size)``.

        The returned arrays are per-batch-size scratch buffers owned by the
        assembler — consume them before the next ``build_many`` call.
        """
        solutions = np.asarray(solutions, dtype=float)
        batch = solutions.shape[0]
        size = self.size

        matrices, rhs, padded = self._workspace(batch)
        base = self._static_matrix if cap_matrix is None else self._static_matrix + cap_matrix
        matrices[:] = base

        if cap_rhs is None:
            rhs.fill(0.0)
        else:
            np.copyto(rhs, cap_rhs)
        batch_rows = np.arange(batch)[:, None]
        if len(self._vs_branch):
            rhs[:, self._vs_branch] += vs_values
        if len(self._cs_idx):
            np.add.at(
                rhs,
                (batch_rows, self._cs_idx[None, :]),
                self._cs_sign * cs_values[:, self._cs_pos],
            )

        if self.mosfets:
            padded[:, :size] = solutions
            voltages = padded[:, self._m_terminals]  # (B, 4, M)
            current, derivs = self._bank.evaluate(
                voltages[:, 0], voltages[:, 1], voltages[:, 2], voltages[:, 3]
            )
            # derivs: (B, 4, M) -> (B, 4*M) so _stamp_take indexes run-locally.
            flat_derivs = derivs.reshape(batch, -1)
            np.add.at(
                matrices.reshape(batch, -1),
                (batch_rows, self._stamp_flat[None, :]),
                self._stamp_sign * flat_derivs[:, self._stamp_take],
            )
            equivalent = current - np.einsum("bkm,bkm->bm", derivs, voltages)
            np.add.at(
                rhs,
                (batch_rows, self._rhs_idx[None, :]),
                self._rhs_sign * equivalent[:, self._rhs_dev],
            )

        return matrices, rhs

    # ------------------------------------------------------------------
    def linear_lu(self, cap_matrix: Optional[np.ndarray] = None):
        """LU factors of ``static + cap_matrix`` (linear circuits only)."""
        matrix = self._static_matrix if cap_matrix is None else self._static_matrix + cap_matrix
        return lu_factor(matrix, check_finite=False)

    # ------------------------------------------------------------------
    def voltages_from_solution(self, solution: np.ndarray) -> Dict[str, float]:
        result = {GROUND: 0.0}
        for node, idx in self.node_index.items():
            result[node] = float(solution[idx])
        return result

    def branch_currents_from_solution(self, solution: np.ndarray) -> Dict[str, float]:
        """Current *entering the positive terminal from the circuit*, per source."""
        return {
            source.name: float(solution[self.branch_index[source.name]])
            for source in self.voltage_sources
        }


def newton_solve(
    assembler: MNAAssembler,
    initial: np.ndarray,
    time: float,
    cap_matrix: Optional[np.ndarray] = None,
    cap_rhs: Optional[np.ndarray] = None,
    options: Optional[NewtonOptions] = None,
    base_matrix: Optional[np.ndarray] = None,
    source_values: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    linear_lu: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """Solve the nonlinear MNA system by damped Newton-Raphson iteration.

    For linear circuits a prefactored ``linear_lu`` (from
    :meth:`MNAAssembler.linear_lu`) short-circuits the iteration to a single
    triangular solve.
    """
    options = options or NewtonOptions()
    if source_values is None:
        source_values = assembler.source_values_at(time)

    if assembler.is_linear and linear_lu is not None:
        rhs = assembler.build_rhs(cap_rhs, *source_values)
        return lu_solve(linear_lu, rhs, check_finite=False)

    solution = np.array(initial, dtype=float, copy=True)
    num_nodes = assembler.num_nodes

    last_delta = float("inf")
    for iteration in range(1, options.max_iterations + 1):
        matrix, rhs = assembler.build(
            solution,
            time,
            cap_matrix,
            cap_rhs,
            base_matrix=base_matrix,
            source_values=source_values,
        )
        # Low-overhead LAPACK solve; the freshly assembled matrix is scratch,
        # so it can be factorized in place.
        _, _, proposed, info = _dgesv(matrix, rhs, overwrite_a=1, overwrite_b=0)
        if info != 0:
            raise ConvergenceError(
                f"singular MNA matrix while solving {assembler.circuit.name!r} at t={time:g}s",
                iterations=iteration,
            )

        delta = proposed - solution
        abs_delta = np.abs(delta)
        voltage_delta = abs_delta[:num_nodes].max() if num_nodes else 0.0
        current_delta = abs_delta[num_nodes:].max() if len(delta) > num_nodes else 0.0
        last_delta = max(voltage_delta, current_delta)

        if num_nodes:
            np.clip(
                delta[:num_nodes],
                -options.damping_limit,
                options.damping_limit,
                out=delta[:num_nodes],
            )
        solution += delta

        if (
            voltage_delta < options.voltage_tolerance
            and current_delta < options.current_tolerance
        ):
            return solution

    raise ConvergenceError(
        f"Newton iteration did not converge for {assembler.circuit.name!r} at t={time:g}s "
        f"(last update {last_delta:.3e})",
        iterations=options.max_iterations,
        residual=last_delta,
    )


def newton_solve_many(
    assembler: MNAAssembler,
    initial: np.ndarray,
    vs_values: np.ndarray,
    cs_values: np.ndarray,
    cap_matrix: Optional[np.ndarray] = None,
    cap_rhs: Optional[np.ndarray] = None,
    options: Optional[NewtonOptions] = None,
    rebuild_converged: bool = False,
) -> np.ndarray:
    """Damped Newton-Raphson over a batch of ``B`` independent bias points.

    All runs share the circuit topology (and companion conductances); each run
    has its own source values and candidate solution.  Runs drop out of the
    iteration as soon as they individually satisfy the tolerances: each
    subsequent iteration assembles and factorizes only the *active*
    (non-converged) subset, so wide batches with a few straggling runs don't
    keep paying for the runs that finished early.  Because every run's
    linearized system is assembled and solved independently of its batch
    neighbours, the results are bit-identical to rebuilding the full batch
    every iteration (``rebuild_converged=True`` keeps that legacy behaviour
    for verification).

    Parameters mirror :meth:`MNAAssembler.build_many`.  Raises
    :class:`~repro.exceptions.ConvergenceError` if any run fails to converge
    within ``max_iterations``; the error's ``metadata["failed_runs"]`` lists
    the offending batch positions so callers can fall back per-run.
    """
    options = options or NewtonOptions()
    solutions = np.array(initial, dtype=float, copy=True)
    if solutions.ndim != 2:
        raise ValueError("newton_solve_many expects an (B, size) initial array")
    batch = solutions.shape[0]
    num_nodes = assembler.num_nodes

    active = np.arange(batch)
    for _ in range(options.max_iterations):
        if rebuild_converged:
            subset = np.arange(batch)  # legacy: rebuild every run, every time
        else:
            subset = active
        matrices, rhs = assembler.build_many(
            solutions[subset],
            vs_values[subset],
            cs_values[subset],
            cap_matrix,
            None if cap_rhs is None else cap_rhs[subset],
        )
        try:
            proposed = np.linalg.solve(matrices, rhs[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix while batch-solving {assembler.circuit.name!r}",
            ) from exc

        delta = proposed - solutions[subset]
        abs_delta = np.abs(delta)
        count = len(subset)
        voltage_delta = abs_delta[:, :num_nodes].max(axis=1) if num_nodes else np.zeros(count)
        if solutions.shape[1] > num_nodes:
            current_delta = abs_delta[:, num_nodes:].max(axis=1)
        else:
            current_delta = np.zeros(count)

        np.clip(
            delta[:, :num_nodes],
            -options.damping_limit,
            options.damping_limit,
            out=delta[:, :num_nodes],
        )
        # Only the still-active runs move; converged runs stay frozen even on
        # the legacy full-rebuild path.
        if rebuild_converged:
            is_active = np.isin(subset, active, assume_unique=True)
        else:
            is_active = np.ones(count, dtype=bool)
        solutions[subset[is_active]] += delta[is_active]

        converged_now = (voltage_delta < options.voltage_tolerance) & (
            current_delta < options.current_tolerance
        )
        still_active = is_active & ~converged_now
        active = subset[still_active]
        if active.size == 0:
            return solutions

    failed = active.tolist()
    error = ConvergenceError(
        f"batch Newton did not converge for {assembler.circuit.name!r} "
        f"(runs {failed} still active after {options.max_iterations} iterations)",
        iterations=options.max_iterations,
    )
    error.metadata = {"failed_runs": failed, "solutions": solutions}
    raise error
