"""Modified nodal analysis (MNA) assembly and the Newton-Raphson solver.

The assembler owns the mapping from node names / voltage-source branches to
matrix indices and knows how to build the linearized system ``G x = rhs`` at a
given candidate solution.  Both the DC and the transient engines reuse it; the
transient engine additionally passes pre-built capacitor companion terms.

The system layout is::

    x = [ v_1 ... v_N | i_V1 ... i_VM ]

where ``v_k`` are non-ground node voltages and ``i_Vj`` is the current
entering the positive terminal of voltage source ``j`` from the circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConvergenceError, NetlistError
from .elements import Capacitor, CurrentSource, Mosfet, Resistor, VoltageSource
from .netlist import GROUND, Circuit

__all__ = ["MNAAssembler", "NewtonOptions", "newton_solve"]


@dataclass
class NewtonOptions:
    """Settings for the Newton-Raphson iteration.

    Attributes
    ----------
    max_iterations:
        Hard iteration limit before declaring non-convergence.
    voltage_tolerance:
        Convergence threshold on the largest node-voltage update (V).
    current_tolerance:
        Convergence threshold on the largest branch-current update (A).
    damping_limit:
        Maximum node-voltage change applied per iteration (V); larger Newton
        steps are clipped, which is the usual way to keep exponential device
        models from overflowing.
    """

    max_iterations: int = 100
    voltage_tolerance: float = 1e-7
    current_tolerance: float = 1e-10
    damping_limit: float = 0.5


class MNAAssembler:
    """Builds linearized MNA systems for a fixed circuit topology."""

    def __init__(self, circuit: Circuit, gmin: float = 1e-12):
        self.circuit = circuit
        self.gmin = gmin
        self.node_index: Dict[str, int] = {}
        for node in circuit.non_ground_nodes:
            self.node_index[node] = len(self.node_index)
        self.num_nodes = len(self.node_index)

        self.voltage_sources: List[VoltageSource] = circuit.voltage_sources()
        self.branch_index: Dict[str, int] = {
            source.name: self.num_nodes + position
            for position, source in enumerate(self.voltage_sources)
        }
        self.size = self.num_nodes + len(self.voltage_sources)
        if self.size == 0:
            raise NetlistError(f"circuit {circuit.name!r} has no unknowns to solve for")

        self.mosfets: List[Mosfet] = circuit.mosfets()
        self._mosfet_indices: List[Tuple[int, int, int, int]] = [
            (
                self._index(m.drain),
                self._index(m.gate),
                self._index(m.source),
                self._index(m.bulk),
            )
            for m in self.mosfets
        ]
        self.current_sources: List[CurrentSource] = [
            e for e in circuit.elements if isinstance(e, CurrentSource)
        ]
        self._current_source_indices: List[Tuple[int, int]] = [
            (self._index(s.node_plus), self._index(s.node_minus)) for s in self.current_sources
        ]

        self._static_matrix = self._build_static_matrix()

    # ------------------------------------------------------------------
    def _index(self, node: str) -> int:
        """Matrix index of a node; ground maps to -1 (excluded)."""
        if node == GROUND:
            return -1
        try:
            return self.node_index[node]
        except KeyError as exc:
            raise NetlistError(f"node {node!r} not present in circuit {self.circuit.name!r}") from exc

    def index_of_node(self, node: str) -> int:
        """Public variant of :meth:`_index` used by the analysis engines."""
        return self._index(node)

    def _build_static_matrix(self) -> np.ndarray:
        matrix = np.zeros((self.size, self.size))
        # gmin from every node to ground keeps floating nodes solvable.
        for idx in range(self.num_nodes):
            matrix[idx, idx] += self.gmin
        for element in self.circuit.elements:
            if isinstance(element, Resistor):
                self._stamp_conductance(
                    matrix, self._index(element.node_a), self._index(element.node_b),
                    1.0 / element.resistance,
                )
        for source in self.voltage_sources:
            branch = self.branch_index[source.name]
            plus = self._index(source.node_plus)
            minus = self._index(source.node_minus)
            if plus >= 0:
                matrix[plus, branch] += 1.0
                matrix[branch, plus] += 1.0
            if minus >= 0:
                matrix[minus, branch] -= 1.0
                matrix[branch, minus] -= 1.0
        return matrix

    @staticmethod
    def _stamp_conductance(matrix: np.ndarray, a: int, b: int, g: float) -> None:
        if a >= 0:
            matrix[a, a] += g
        if b >= 0:
            matrix[b, b] += g
        if a >= 0 and b >= 0:
            matrix[a, b] -= g
            matrix[b, a] -= g

    def capacitor_companion_matrix(self, dt: float) -> np.ndarray:
        """Conductance contribution ``C / dt`` of all capacitive branches."""
        matrix = np.zeros((self.size, self.size))
        for node_a, node_b, capacitance in self.circuit.capacitor_branch_list():
            if capacitance <= 0.0:
                continue
            self._stamp_conductance(
                matrix, self._index(node_a), self._index(node_b), capacitance / dt
            )
        return matrix

    def capacitor_companion_rhs(self, dt: float, previous: np.ndarray) -> np.ndarray:
        """Right-hand-side contribution of capacitor branches (backward Euler)."""
        rhs = np.zeros(self.size)
        for node_a, node_b, capacitance in self.circuit.capacitor_branch_list():
            if capacitance <= 0.0:
                continue
            a = self._index(node_a)
            b = self._index(node_b)
            va = previous[a] if a >= 0 else 0.0
            vb = previous[b] if b >= 0 else 0.0
            g_times_v = (capacitance / dt) * (va - vb)
            if a >= 0:
                rhs[a] += g_times_v
            if b >= 0:
                rhs[b] -= g_times_v
        return rhs

    # ------------------------------------------------------------------
    def build(
        self,
        solution: np.ndarray,
        time: float,
        cap_matrix: Optional[np.ndarray] = None,
        cap_rhs: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the linearized system around ``solution`` at ``time``."""
        matrix = self._static_matrix.copy()
        if cap_matrix is not None:
            matrix += cap_matrix
        rhs = np.zeros(self.size)
        if cap_rhs is not None:
            rhs += cap_rhs

        for source in self.voltage_sources:
            rhs[self.branch_index[source.name]] += source.value(time)

        for source, (plus, minus) in zip(self.current_sources, self._current_source_indices):
            value = source.value(time)
            if plus >= 0:
                rhs[plus] -= value
            if minus >= 0:
                rhs[minus] += value

        def node_voltage(idx: int) -> float:
            return solution[idx] if idx >= 0 else 0.0

        for mosfet, (d, g, s, b) in zip(self.mosfets, self._mosfet_indices):
            vd, vg, vs, vb = node_voltage(d), node_voltage(g), node_voltage(s), node_voltage(b)
            current, derivs = mosfet.evaluate(vg, vd, vs, vb)
            conductances = (
                (derivs["vd"], d),
                (derivs["vg"], g),
                (derivs["vs"], s),
                (derivs["vb"], b),
            )
            equivalent = current
            for gk, ctrl in conductances:
                equivalent -= gk * node_voltage(ctrl)
                if ctrl < 0:
                    continue
                if d >= 0:
                    matrix[d, ctrl] += gk
                if s >= 0:
                    matrix[s, ctrl] -= gk
            if d >= 0:
                rhs[d] -= equivalent
            if s >= 0:
                rhs[s] += equivalent

        return matrix, rhs

    # ------------------------------------------------------------------
    def voltages_from_solution(self, solution: np.ndarray) -> Dict[str, float]:
        result = {GROUND: 0.0}
        for node, idx in self.node_index.items():
            result[node] = float(solution[idx])
        return result

    def branch_currents_from_solution(self, solution: np.ndarray) -> Dict[str, float]:
        """Current *entering the positive terminal from the circuit*, per source."""
        return {
            source.name: float(solution[self.branch_index[source.name]])
            for source in self.voltage_sources
        }


def newton_solve(
    assembler: MNAAssembler,
    initial: np.ndarray,
    time: float,
    cap_matrix: Optional[np.ndarray] = None,
    cap_rhs: Optional[np.ndarray] = None,
    options: Optional[NewtonOptions] = None,
) -> np.ndarray:
    """Solve the nonlinear MNA system by damped Newton-Raphson iteration."""
    options = options or NewtonOptions()
    solution = np.array(initial, dtype=float, copy=True)
    num_nodes = assembler.num_nodes

    last_delta = float("inf")
    for iteration in range(1, options.max_iterations + 1):
        matrix, rhs = assembler.build(solution, time, cap_matrix, cap_rhs)
        try:
            proposed = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular MNA matrix while solving {assembler.circuit.name!r} at t={time:g}s",
                iterations=iteration,
            ) from exc

        delta = proposed - solution
        voltage_delta = np.max(np.abs(delta[:num_nodes])) if num_nodes else 0.0
        current_delta = np.max(np.abs(delta[num_nodes:])) if len(delta) > num_nodes else 0.0
        last_delta = max(voltage_delta, current_delta)

        limited = delta.copy()
        if num_nodes:
            limited[:num_nodes] = np.clip(
                delta[:num_nodes], -options.damping_limit, options.damping_limit
            )
        solution = solution + limited

        if (
            voltage_delta < options.voltage_tolerance
            and current_delta < options.current_tolerance
        ):
            return solution

    raise ConvergenceError(
        f"Newton iteration did not converge for {assembler.circuit.name!r} at t={time:g}s "
        f"(last update {last_delta:.3e})",
        iterations=options.max_iterations,
        residual=last_delta,
    )
