"""Time-dependent stimulus descriptions for independent sources.

A :class:`Stimulus` is a callable object mapping time (seconds) to a value
(volts or amperes).  These are deliberately simple, analytic descriptions so
that both the transistor-level reference simulator and the current-source
model integrator can evaluate exactly the same input waveforms.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import WaveformError

__all__ = [
    "Stimulus",
    "DCValue",
    "PiecewiseLinear",
    "SaturatedRamp",
    "Pulse",
    "CompositeStimulus",
]


class Stimulus:
    """Base class for time-dependent source values."""

    def __call__(self, time: float) -> float:
        raise NotImplementedError

    def value_at(self, time: float) -> float:
        """Alias of ``__call__`` for readability at call sites."""
        return self(time)

    def breakpoints(self) -> Tuple[float, ...]:
        """Times at which the stimulus changes slope.

        The transient engine refines its time steps around these points so
        that sharp ramp corners are not smeared by the integration step.
        """
        return ()

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over an array of sample times.

        The base implementation falls back to per-sample calls; the concrete
        piecewise-linear stimuli override it with a single ``np.interp``.  The
        transient engine pre-samples every stimulus over the whole time grid
        through this method instead of calling the stimulus per step.
        """
        return np.array([self(float(t)) for t in np.asarray(times).ravel()]).reshape(
            np.shape(times)
        )


@dataclass(frozen=True)
class DCValue(Stimulus):
    """A constant source value."""

    value: float

    def __call__(self, time: float) -> float:
        return self.value

    def sample(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.shape(times), self.value)


@dataclass(frozen=True)
class PiecewiseLinear(Stimulus):
    """Piecewise-linear stimulus defined by (time, value) points.

    Values before the first point and after the last point are held constant.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise WaveformError("PiecewiseLinear needs at least one point")
        times = [t for t, _ in self.points]
        if any(t1 < t0 for t0, t1 in zip(times, times[1:])):
            raise WaveformError("PiecewiseLinear times must be non-decreasing")

    def __call__(self, time: float) -> float:
        pts = self.points
        times = [t for t, _ in pts]
        if time <= times[0]:
            return pts[0][1]
        if time >= times[-1]:
            return pts[-1][1]
        idx = bisect.bisect_right(times, time) - 1
        t0, v0 = pts[idx]
        t1, v1 = pts[idx + 1]
        if t1 == t0:
            return v1
        frac = (time - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def breakpoints(self) -> Tuple[float, ...]:
        return tuple(t for t, _ in self.points)

    def sample(self, times: np.ndarray) -> np.ndarray:
        xp = np.asarray([t for t, _ in self.points])
        if np.any(np.diff(xp) <= 0):
            # np.interp does not honour the "last point wins" rule at
            # coincident times; keep the scalar semantics there.
            return super().sample(times)
        fp = np.asarray([v for _, v in self.points])
        return np.interp(np.asarray(times, dtype=float), xp, fp)


@dataclass(frozen=True)
class SaturatedRamp(Stimulus):
    """The saturated-ramp waveform used throughout cell characterization.

    The value is ``initial`` until ``start_time``, ramps linearly to ``final``
    over ``transition_time`` and then stays at ``final``.
    """

    initial: float
    final: float
    start_time: float
    transition_time: float

    def __post_init__(self) -> None:
        if self.transition_time <= 0:
            raise WaveformError("transition_time must be positive")

    def __call__(self, time: float) -> float:
        if time <= self.start_time:
            return self.initial
        if time >= self.start_time + self.transition_time:
            return self.final
        frac = (time - self.start_time) / self.transition_time
        return self.initial + frac * (self.final - self.initial)

    @property
    def slope(self) -> float:
        """Ramp slope in volts per second (signed)."""
        return (self.final - self.initial) / self.transition_time

    def breakpoints(self) -> Tuple[float, ...]:
        return (self.start_time, self.start_time + self.transition_time)

    def sample(self, times: np.ndarray) -> np.ndarray:
        return np.interp(
            np.asarray(times, dtype=float),
            (self.start_time, self.start_time + self.transition_time),
            (self.initial, self.final),
        )


@dataclass(frozen=True)
class Pulse(Stimulus):
    """A single pulse: low -> high -> low, with linear edges.

    Useful for constructing glitch stimuli and aggressor transitions.
    """

    low: float
    high: float
    start_time: float
    rise_time: float
    width: float
    fall_time: float

    def __post_init__(self) -> None:
        if self.rise_time <= 0 or self.fall_time <= 0:
            raise WaveformError("pulse edge times must be positive")
        if self.width < 0:
            raise WaveformError("pulse width must be non-negative")

    def __call__(self, time: float) -> float:
        t_rise_end = self.start_time + self.rise_time
        t_fall_start = t_rise_end + self.width
        t_fall_end = t_fall_start + self.fall_time
        if time <= self.start_time or time >= t_fall_end:
            return self.low
        if time < t_rise_end:
            frac = (time - self.start_time) / self.rise_time
            return self.low + frac * (self.high - self.low)
        if time <= t_fall_start:
            return self.high
        frac = (time - t_fall_start) / self.fall_time
        return self.high + frac * (self.low - self.high)

    def breakpoints(self) -> Tuple[float, ...]:
        t_rise_end = self.start_time + self.rise_time
        t_fall_start = t_rise_end + self.width
        return (self.start_time, t_rise_end, t_fall_start, t_fall_start + self.fall_time)

    def sample(self, times: np.ndarray) -> np.ndarray:
        t_rise_end = self.start_time + self.rise_time
        t_fall_start = t_rise_end + self.width
        xp = [self.start_time, t_rise_end, t_fall_start, t_fall_start + self.fall_time]
        fp = [self.low, self.high, self.high, self.low]
        if self.width == 0:
            xp = [self.start_time, t_rise_end, t_fall_start + self.fall_time]
            fp = [self.low, self.high, self.low]
        return np.interp(np.asarray(times, dtype=float), xp, fp)


@dataclass
class CompositeStimulus(Stimulus):
    """Sum of several stimuli plus an offset.

    Used, for example, to superimpose a crosstalk-noise pulse on a quiet
    victim input when building noisy waveforms analytically.
    """

    parts: List[Stimulus] = field(default_factory=list)
    offset: float = 0.0

    def __call__(self, time: float) -> float:
        return self.offset + sum(part(time) for part in self.parts)

    def sample(self, times: np.ndarray) -> np.ndarray:
        total = np.full(np.shape(times), self.offset)
        for part in self.parts:
            total = total + part.sample(times)
        return total

    def breakpoints(self) -> Tuple[float, ...]:
        pts: List[float] = []
        for part in self.parts:
            pts.extend(part.breakpoints())
        return tuple(sorted(set(pts)))


def sequence_to_pwl(times: Sequence[float], values: Sequence[float]) -> PiecewiseLinear:
    """Build a :class:`PiecewiseLinear` from parallel time/value sequences."""
    if len(times) != len(values):
        raise WaveformError("times and values must have equal length")
    return PiecewiseLinear(points=tuple(zip(map(float, times), map(float, values))))
