"""A small SPICE-like circuit simulator used as the golden reference.

The paper validates its current-source model against HSPICE.  This package is
the stand-in: a modified-nodal-analysis simulator with Newton-Raphson DC and
backward-Euler transient analyses over the EKV-style device models from
:mod:`repro.technology`.  Every characterization procedure and every accuracy
comparison in the reproduction runs against this simulator.
"""

from .dc import DCAnalysis, dc_operating_point, dc_sweep, newton_fixed_point_many
from .elements import Capacitor, CurrentSource, Element, Mosfet, Resistor, VoltageSource
from .mna import MNAAssembler, NewtonOptions, newton_solve, newton_solve_many
from .netlist import GROUND, Circuit
from .results import OperatingPoint, TransientResult
from .sources import (
    CompositeStimulus,
    DCValue,
    PiecewiseLinear,
    Pulse,
    SaturatedRamp,
    Stimulus,
)
from .transient import (
    TransientAnalysis,
    TransientOptions,
    transient_analysis,
    transient_analysis_many,
)

__all__ = [
    "GROUND",
    "Circuit",
    "Element",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Mosfet",
    "Stimulus",
    "DCValue",
    "PiecewiseLinear",
    "SaturatedRamp",
    "Pulse",
    "CompositeStimulus",
    "MNAAssembler",
    "NewtonOptions",
    "newton_solve",
    "newton_solve_many",
    "DCAnalysis",
    "dc_operating_point",
    "newton_fixed_point_many",
    "dc_sweep",
    "TransientAnalysis",
    "TransientOptions",
    "transient_analysis",
    "transient_analysis_many",
    "OperatingPoint",
    "TransientResult",
]
