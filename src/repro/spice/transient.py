"""Transient analysis (backward-Euler integration with per-step Newton).

Backward Euler is unconditionally stable and slightly lossy, which is exactly
what is wanted from a reference simulator used for cell characterization: the
waveforms stay smooth and monotone for saturated-ramp stimuli, and accuracy is
controlled by the step size.  All of the paper's experiments run with steps of
0.5-2 ps over windows of a few nanoseconds.

The engine is built for throughput: every stimulus is pre-sampled over the
whole time grid with one vectorized call, the ``static + C/dt`` base matrix
(and, for linear circuits, its LU factorization) is cached per distinct time
step, node waveforms are recorded into preallocated ``(num_nodes, num_steps)``
arrays instead of per-step list appends, and :meth:`TransientAnalysis.run_many`
integrates a whole batch of stimulus variants of the same circuit in lockstep
through the batched Newton solver (one ``np.linalg.solve`` over ``(B, n, n)``
per iteration).  The capacitance-characterization flows use that to run all
their ramp variants simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import AnalysisError, ConvergenceError
from .mna import MNAAssembler, NewtonOptions, newton_solve, newton_solve_many
from .netlist import Circuit
from .results import TransientResult
from .sources import DCValue, Stimulus

__all__ = [
    "TransientOptions",
    "transient_analysis",
    "transient_analysis_many",
    "TransientAnalysis",
]


@dataclass
class TransientOptions:
    """Settings for a transient run.

    Attributes
    ----------
    time_step:
        Nominal integration step in seconds.
    gmin:
        Minimum conductance from each node to ground.
    include_breakpoints:
        When true (default) all stimulus breakpoints are inserted into the
        time grid so that ramp corners are hit exactly.
    newton:
        Newton-Raphson options used at every time point.
    record_source_currents:
        When true (default) the current of every voltage source is stored;
        characterization needs this, plain waveform comparisons do not.
    """

    time_step: float = 1e-12
    gmin: float = 1e-12
    include_breakpoints: bool = True
    newton: NewtonOptions = None  # type: ignore[assignment]
    record_source_currents: bool = True

    def __post_init__(self) -> None:
        if self.time_step <= 0:
            raise AnalysisError("time_step must be positive")
        if self.newton is None:
            self.newton = NewtonOptions()


class TransientAnalysis:
    """A transient engine bound to a circuit (reusable across runs)."""

    def __init__(self, circuit: Circuit, options: Optional[TransientOptions] = None):
        self.circuit = circuit
        self.options = options or TransientOptions()
        self.assembler = MNAAssembler(circuit, gmin=self.options.gmin)

    # ------------------------------------------------------------------
    def _time_grid(
        self,
        t_stop: float,
        t_start: float,
        extra_breakpoints: Iterable[float] = (),
    ) -> np.ndarray:
        base = np.arange(t_start, t_stop + 0.5 * self.options.time_step, self.options.time_step)
        # np.arange can overshoot t_stop by up to half a step; the window must
        # end exactly at t_stop so waveform comparisons line up.
        if base[-1] > t_stop:
            base[-1] = t_stop
        elif base[-1] < t_stop:
            base = np.append(base, t_stop)
        breakpoints: List[float] = list(extra_breakpoints)
        if self.options.include_breakpoints:
            for source in self.assembler.voltage_sources + self.assembler.current_sources:
                breakpoints.extend(source.stimulus.breakpoints())
        inside = [t for t in breakpoints if t_start < t < t_stop]
        if not inside:
            return base
        grid = np.unique(np.concatenate([base, np.asarray(inside, dtype=float)]))
        return grid

    def _initial_solution(
        self,
        initial_voltages: Optional[Dict[str, float]],
        t_start: float,
        source_values=None,
    ) -> np.ndarray:
        """DC solution at ``t_start`` seeded (and optionally pinned) by user ICs."""
        guess = np.zeros(self.assembler.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                idx = self.assembler.index_of_node(node)
                if idx >= 0:
                    guess[idx] = value
        try:
            solution = newton_solve(
                self.assembler,
                guess,
                t_start,
                options=self.options.newton,
                source_values=source_values,
            )
        except ConvergenceError:
            # Fall back to gmin-stepped DC for a robust starting point.
            from .dc import DCAnalysis

            analysis = DCAnalysis(self.circuit, gmin=self.options.gmin, options=self.options.newton)
            op = analysis.solve(time=t_start, initial_guess=initial_voltages)
            solution = np.zeros(self.assembler.size)
            for node, idx in self.assembler.node_index.items():
                solution[idx] = op.voltages[node]
            for name, idx in self.assembler.branch_index.items():
                solution[idx] = op.branch_currents[name]
        if initial_voltages:
            # Honour explicit initial conditions exactly: override the DC value.
            for node, value in initial_voltages.items():
                idx = self.assembler.index_of_node(node)
                if idx >= 0:
                    solution[idx] = value
        return solution

    # ------------------------------------------------------------------
    def _record_indices(self, record_nodes: Optional[Sequence[str]]) -> List[str]:
        nodes = list(record_nodes) if record_nodes else list(self.circuit.non_ground_nodes)
        for node in nodes:
            if not self.circuit.has_node(node):
                raise AnalysisError(f"cannot record unknown node {node!r}")
        return nodes

    def _recording_plan(self, nodes: Sequence[str]):
        """Gather indices shared by the scalar and lockstep recorders.

        Node gathers go through a zero-padded solution vector so that
        ground-recorded nodes read 0.0 without masking.
        """
        assembler = self.assembler
        pad = assembler.size
        node_gather = np.array(
            [assembler.index_of_node(n) if assembler.index_of_node(n) >= 0 else pad for n in nodes],
            dtype=np.intp,
        )
        branch_gather = np.array(
            [assembler.branch_index[s.name] for s in assembler.voltage_sources], dtype=np.intp
        )
        return node_gather, branch_gather

    def _step_cache_entry(self, step_cache: Dict[float, tuple], dt: float):
        """Per-dt companion matrix, prebuilt base matrix and (linear) LU."""
        key = round(dt, 18)
        cached = step_cache.get(key)
        if cached is None:
            assembler = self.assembler
            cap_matrix = assembler.capacitor_companion_matrix(dt)
            base_matrix = assembler._static_matrix + cap_matrix
            lu = assembler.linear_lu(cap_matrix) if assembler.is_linear else None
            cached = (cap_matrix, base_matrix, lu)
            step_cache[key] = cached
        return cached

    def _sample_sources(self, times: np.ndarray, overrides: Optional[Mapping[str, Stimulus]] = None):
        """Pre-sample every source stimulus over the whole grid.

        Returns ``(vs_samples, cs_samples)`` with shapes ``(V, T)`` and
        ``(C, T)``.  ``overrides`` maps source names to replacement stimuli
        (used by the lockstep batch runner).
        """
        overrides = overrides or {}

        def stimulus_for(source) -> Stimulus:
            return overrides.get(source.name, source.stimulus)

        assembler = self.assembler
        num_steps = len(times)
        vs = np.empty((len(assembler.voltage_sources), num_steps))
        for position, source in enumerate(assembler.voltage_sources):
            vs[position] = stimulus_for(source).sample(times)
        cs = np.empty((len(assembler.current_sources), num_steps))
        for position, source in enumerate(assembler.current_sources):
            cs[position] = stimulus_for(source).sample(times)
        return vs, cs

    def run(
        self,
        t_stop: float,
        t_start: float = 0.0,
        initial_voltages: Optional[Dict[str, float]] = None,
        record_nodes: Optional[Sequence[str]] = None,
    ) -> TransientResult:
        """Integrate the circuit from ``t_start`` to ``t_stop``.

        Parameters
        ----------
        t_stop, t_start:
            Simulation window in seconds.
        initial_voltages:
            Optional initial node voltages.  Nodes not listed start from the
            DC operating point at ``t_start``; listed nodes are forced to the
            given value at the first time point (useful for imposing an
            internal-node precharge without simulating its history).
        record_nodes:
            Subset of nodes to record.  Defaults to every node.
        """
        if t_stop <= t_start:
            raise AnalysisError("t_stop must be greater than t_start")

        assembler = self.assembler
        times = self._time_grid(t_stop, t_start)
        num_steps = len(times)
        nodes = self._record_indices(record_nodes)

        vs_samples, cs_samples = self._sample_sources(times)
        solution = self._initial_solution(
            initial_voltages, times[0], source_values=(vs_samples[:, 0], cs_samples[:, 0])
        )

        # Preallocated recording: one (num_recorded, num_steps) voltage block
        # and one (num_sources, num_steps) current block.
        node_gather, branch_gather = self._recording_plan(nodes)
        record_currents = self.options.record_source_currents
        voltage_block = np.empty((len(nodes), num_steps))
        current_block = np.empty((len(branch_gather), num_steps)) if record_currents else None
        padded = np.zeros(assembler.size + 1)

        def record(step: int, current_solution: np.ndarray) -> None:
            padded[: assembler.size] = current_solution
            voltage_block[:, step] = padded[node_gather]
            if current_block is not None:
                current_block[:, step] = -current_solution[branch_gather]

        record(0, solution)

        step_cache: Dict[float, tuple] = {}
        newton = self.options.newton
        for step in range(1, num_steps):
            dt = times[step] - times[step - 1]
            if dt <= 0:
                record(step, solution)
                continue
            cap_matrix, base_matrix, lu = self._step_cache_entry(step_cache, dt)
            cap_rhs = assembler.capacitor_companion_rhs(dt, solution)
            solution = newton_solve(
                assembler,
                solution,
                times[step],
                cap_matrix=cap_matrix,
                cap_rhs=cap_rhs,
                options=newton,
                base_matrix=base_matrix,
                source_values=(vs_samples[:, step], cs_samples[:, step]),
                linear_lu=lu,
            )
            record(step, solution)

        return self._package_result(times, nodes, voltage_block, current_block)

    def _package_result(
        self,
        times: np.ndarray,
        nodes: Sequence[str],
        voltage_block: np.ndarray,
        current_block: Optional[np.ndarray],
    ) -> TransientResult:
        source_currents: Dict[str, np.ndarray] = {}
        if current_block is not None:
            for position, source in enumerate(self.assembler.voltage_sources):
                source_currents[source.name] = current_block[position]
        return TransientResult(
            times=times,
            node_voltages={node: voltage_block[i] for i, node in enumerate(nodes)},
            source_currents=source_currents,
            metadata={"time_step": self.options.time_step},
        )

    # ------------------------------------------------------------------
    def run_many(
        self,
        stimulus_sets: Sequence[Mapping[str, Union[Stimulus, float]]],
        t_stop: float,
        t_start: float = 0.0,
        initial_voltages: Optional[Dict[str, float]] = None,
        record_nodes: Optional[Sequence[str]] = None,
    ) -> List[TransientResult]:
        """Integrate several stimulus variants of this circuit in lockstep.

        Every entry of ``stimulus_sets`` maps *source element names* to the
        stimulus that run should apply (bare numbers become DC values); sources
        not listed keep the stimulus currently attached to the circuit.  All
        runs share one time grid — the union of every run's breakpoints — and
        every integration step solves all runs through one batched Newton
        iteration, which is dramatically faster than sequential runs for the
        characterization sweeps.

        Returns one :class:`TransientResult` per entry, in order.
        """
        if t_stop <= t_start:
            raise AnalysisError("t_stop must be greater than t_start")
        if not stimulus_sets:
            return []

        assembler = self.assembler
        known_sources = {s.name for s in assembler.voltage_sources} | {
            s.name for s in assembler.current_sources
        }
        overrides: List[Dict[str, Stimulus]] = []
        for stimulus_set in stimulus_sets:
            resolved: Dict[str, Stimulus] = {}
            for name, stimulus in stimulus_set.items():
                if name not in known_sources:
                    raise AnalysisError(f"cannot drive unknown source {name!r}")
                resolved[name] = (
                    stimulus if isinstance(stimulus, Stimulus) else DCValue(float(stimulus))
                )
            overrides.append(resolved)

        extra_breakpoints: List[float] = []
        for resolved in overrides:
            for stimulus in resolved.values():
                extra_breakpoints.extend(stimulus.breakpoints())
        times = self._time_grid(t_stop, t_start, extra_breakpoints=extra_breakpoints)
        num_steps = len(times)
        batch = len(overrides)
        nodes = self._record_indices(record_nodes)

        vs_all = np.empty((batch, len(assembler.voltage_sources), num_steps))
        cs_all = np.empty((batch, len(assembler.current_sources), num_steps))
        for run, resolved in enumerate(overrides):
            vs_all[run], cs_all[run] = self._sample_sources(times, overrides=resolved)

        solutions = self._initial_solutions_many(initial_voltages, times[0], vs_all, cs_all, overrides)

        node_gather, branch_gather = self._recording_plan(nodes)
        record_currents = self.options.record_source_currents
        voltage_block = np.empty((batch, len(nodes), num_steps))
        current_block = (
            np.empty((batch, len(branch_gather), num_steps)) if record_currents else None
        )
        padded = np.zeros((batch, assembler.size + 1))

        def record(step: int, current_solutions: np.ndarray) -> None:
            padded[:, : assembler.size] = current_solutions
            voltage_block[:, :, step] = padded[:, node_gather]
            if current_block is not None:
                current_block[:, :, step] = -current_solutions[:, branch_gather]

        record(0, solutions)

        step_cache: Dict[float, tuple] = {}
        newton = self.options.newton
        from scipy.linalg import lu_solve

        for step in range(1, num_steps):
            dt = times[step] - times[step - 1]
            if dt <= 0:
                record(step, solutions)
                continue
            cap_matrix, _, lu = self._step_cache_entry(step_cache, dt)
            cap_rhs = assembler.capacitor_companion_rhs(dt, solutions)
            vs_step = vs_all[:, :, step]
            cs_step = cs_all[:, :, step]
            if lu is not None:
                rhs = np.empty((batch, assembler.size))
                for run in range(batch):
                    rhs[run] = assembler.build_rhs(cap_rhs[run], vs_step[run], cs_step[run])
                solutions = lu_solve(lu, rhs.T, check_finite=False).T
            else:
                solutions = newton_solve_many(
                    assembler,
                    solutions,
                    vs_step,
                    cs_step,
                    cap_matrix=cap_matrix,
                    cap_rhs=cap_rhs,
                    options=newton,
                )
            record(step, solutions)

        results: List[TransientResult] = []
        for run in range(batch):
            results.append(
                self._package_result(
                    times,
                    nodes,
                    voltage_block[run],
                    current_block[run] if current_block is not None else None,
                )
            )
        return results

    def _initial_solutions_many(
        self,
        initial_voltages: Optional[Dict[str, float]],
        t_start: float,
        vs_all: np.ndarray,
        cs_all: np.ndarray,
        overrides: Sequence[Mapping[str, Stimulus]],
    ) -> np.ndarray:
        """Batched DC solves at ``t_start``, with per-run scalar fallback."""
        assembler = self.assembler
        batch = vs_all.shape[0]
        guess = np.zeros((batch, assembler.size))
        if initial_voltages:
            for node, value in initial_voltages.items():
                idx = assembler.index_of_node(node)
                if idx >= 0:
                    guess[:, idx] = value
        try:
            solutions = newton_solve_many(
                assembler,
                guess,
                vs_all[:, :, 0],
                cs_all[:, :, 0],
                options=self.options.newton,
            )
        except ConvergenceError:
            solutions = np.empty((batch, assembler.size))
            for run in range(batch):
                solutions[run] = self._initial_solution(
                    initial_voltages,
                    t_start,
                    source_values=(vs_all[run, :, 0], cs_all[run, :, 0]),
                )
        if initial_voltages:
            for node, value in initial_voltages.items():
                idx = assembler.index_of_node(node)
                if idx >= 0:
                    solutions[:, idx] = value
        return solutions


def transient_analysis(
    circuit: Circuit,
    t_stop: float,
    time_step: float = 1e-12,
    t_start: float = 0.0,
    initial_voltages: Optional[Dict[str, float]] = None,
    record_nodes: Optional[Sequence[str]] = None,
    options: Optional[TransientOptions] = None,
) -> TransientResult:
    """Convenience wrapper building a :class:`TransientAnalysis` and running it."""
    if options is None:
        options = TransientOptions(time_step=time_step)
    engine = TransientAnalysis(circuit, options)
    return engine.run(
        t_stop=t_stop,
        t_start=t_start,
        initial_voltages=initial_voltages,
        record_nodes=record_nodes,
    )


def transient_analysis_many(
    circuit: Circuit,
    stimulus_sets: Sequence[Mapping[str, Union[Stimulus, float]]],
    t_stop: float,
    time_step: float = 1e-12,
    t_start: float = 0.0,
    initial_voltages: Optional[Dict[str, float]] = None,
    record_nodes: Optional[Sequence[str]] = None,
    options: Optional[TransientOptions] = None,
) -> List[TransientResult]:
    """Run several stimulus variants of one circuit in lockstep (see
    :meth:`TransientAnalysis.run_many`)."""
    if options is None:
        options = TransientOptions(time_step=time_step)
    engine = TransientAnalysis(circuit, options)
    return engine.run_many(
        stimulus_sets,
        t_stop=t_stop,
        t_start=t_start,
        initial_voltages=initial_voltages,
        record_nodes=record_nodes,
    )
