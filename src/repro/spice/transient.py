"""Transient analysis (backward-Euler integration with per-step Newton).

Backward Euler is unconditionally stable and slightly lossy, which is exactly
what is wanted from a reference simulator used for cell characterization: the
waveforms stay smooth and monotone for saturated-ramp stimuli, and accuracy is
controlled by the step size.  All of the paper's experiments run with steps of
0.5-2 ps over windows of a few nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import AnalysisError, ConvergenceError
from .mna import MNAAssembler, NewtonOptions, newton_solve
from .netlist import GROUND, Circuit
from .results import OperatingPoint, TransientResult

__all__ = ["TransientOptions", "transient_analysis", "TransientAnalysis"]


@dataclass
class TransientOptions:
    """Settings for a transient run.

    Attributes
    ----------
    time_step:
        Nominal integration step in seconds.
    gmin:
        Minimum conductance from each node to ground.
    include_breakpoints:
        When true (default) all stimulus breakpoints are inserted into the
        time grid so that ramp corners are hit exactly.
    newton:
        Newton-Raphson options used at every time point.
    record_source_currents:
        When true (default) the current of every voltage source is stored;
        characterization needs this, plain waveform comparisons do not.
    """

    time_step: float = 1e-12
    gmin: float = 1e-12
    include_breakpoints: bool = True
    newton: NewtonOptions = None  # type: ignore[assignment]
    record_source_currents: bool = True

    def __post_init__(self) -> None:
        if self.time_step <= 0:
            raise AnalysisError("time_step must be positive")
        if self.newton is None:
            self.newton = NewtonOptions()


class TransientAnalysis:
    """A transient engine bound to a circuit (reusable across runs)."""

    def __init__(self, circuit: Circuit, options: Optional[TransientOptions] = None):
        self.circuit = circuit
        self.options = options or TransientOptions()
        self.assembler = MNAAssembler(circuit, gmin=self.options.gmin)

    # ------------------------------------------------------------------
    def _time_grid(self, t_stop: float, t_start: float) -> np.ndarray:
        base = np.arange(t_start, t_stop + 0.5 * self.options.time_step, self.options.time_step)
        if base[-1] < t_stop:
            base = np.append(base, t_stop)
        if not self.options.include_breakpoints:
            return base
        breakpoints: List[float] = []
        for source in self.assembler.voltage_sources + self.assembler.current_sources:
            breakpoints.extend(source.stimulus.breakpoints())
        inside = [t for t in breakpoints if t_start < t < t_stop]
        if not inside:
            return base
        grid = np.unique(np.concatenate([base, np.asarray(inside, dtype=float)]))
        return grid

    def _initial_solution(
        self, initial_voltages: Optional[Dict[str, float]], t_start: float
    ) -> np.ndarray:
        """DC solution at ``t_start`` seeded (and optionally pinned) by user ICs."""
        guess = np.zeros(self.assembler.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                idx = self.assembler.index_of_node(node)
                if idx >= 0:
                    guess[idx] = value
        try:
            solution = newton_solve(
                self.assembler, guess, t_start, options=self.options.newton
            )
        except ConvergenceError:
            # Fall back to gmin-stepped DC for a robust starting point.
            from .dc import DCAnalysis

            analysis = DCAnalysis(self.circuit, gmin=self.options.gmin, options=self.options.newton)
            op = analysis.solve(time=t_start, initial_guess=initial_voltages)
            solution = np.zeros(self.assembler.size)
            for node, idx in self.assembler.node_index.items():
                solution[idx] = op.voltages[node]
            for name, idx in self.assembler.branch_index.items():
                solution[idx] = op.branch_currents[name]
        if initial_voltages:
            # Honour explicit initial conditions exactly: override the DC value.
            for node, value in initial_voltages.items():
                idx = self.assembler.index_of_node(node)
                if idx >= 0:
                    solution[idx] = value
        return solution

    # ------------------------------------------------------------------
    def run(
        self,
        t_stop: float,
        t_start: float = 0.0,
        initial_voltages: Optional[Dict[str, float]] = None,
        record_nodes: Optional[Sequence[str]] = None,
    ) -> TransientResult:
        """Integrate the circuit from ``t_start`` to ``t_stop``.

        Parameters
        ----------
        t_stop, t_start:
            Simulation window in seconds.
        initial_voltages:
            Optional initial node voltages.  Nodes not listed start from the
            DC operating point at ``t_start``; listed nodes are forced to the
            given value at the first time point (useful for imposing an
            internal-node precharge without simulating its history).
        record_nodes:
            Subset of nodes to record.  Defaults to every node.
        """
        if t_stop <= t_start:
            raise AnalysisError("t_stop must be greater than t_start")

        times = self._time_grid(t_stop, t_start)
        nodes = list(record_nodes) if record_nodes else list(self.circuit.non_ground_nodes)
        for node in nodes:
            if not self.circuit.has_node(node):
                raise AnalysisError(f"cannot record unknown node {node!r}")

        solution = self._initial_solution(initial_voltages, times[0])

        voltage_rows: Dict[str, List[float]] = {node: [] for node in nodes}
        current_rows: Dict[str, List[float]] = {
            source.name: [] for source in self.assembler.voltage_sources
        } if self.options.record_source_currents else {}

        def record(current_solution: np.ndarray) -> None:
            for node in nodes:
                idx = self.assembler.index_of_node(node)
                voltage_rows[node].append(current_solution[idx] if idx >= 0 else 0.0)
            if self.options.record_source_currents:
                for name, idx in self.assembler.branch_index.items():
                    current_rows[name].append(-current_solution[idx])

        record(solution)

        cap_matrix_cache: Dict[float, np.ndarray] = {}
        for step in range(1, len(times)):
            dt = times[step] - times[step - 1]
            if dt <= 0:
                continue
            key = round(dt, 18)
            if key not in cap_matrix_cache:
                cap_matrix_cache[key] = self.assembler.capacitor_companion_matrix(dt)
            cap_matrix = cap_matrix_cache[key]
            cap_rhs = self.assembler.capacitor_companion_rhs(dt, solution)
            solution = newton_solve(
                self.assembler,
                solution,
                times[step],
                cap_matrix=cap_matrix,
                cap_rhs=cap_rhs,
                options=self.options.newton,
            )
            record(solution)

        return TransientResult(
            times=times,
            node_voltages={node: np.asarray(v) for node, v in voltage_rows.items()},
            source_currents={name: np.asarray(v) for name, v in current_rows.items()},
            metadata={"time_step": self.options.time_step},
        )


def transient_analysis(
    circuit: Circuit,
    t_stop: float,
    time_step: float = 1e-12,
    t_start: float = 0.0,
    initial_voltages: Optional[Dict[str, float]] = None,
    record_nodes: Optional[Sequence[str]] = None,
    options: Optional[TransientOptions] = None,
) -> TransientResult:
    """Convenience wrapper building a :class:`TransientAnalysis` and running it."""
    if options is None:
        options = TransientOptions(time_step=time_step)
    engine = TransientAnalysis(circuit, options)
    return engine.run(
        t_stop=t_stop,
        t_start=t_start,
        initial_voltages=initial_voltages,
        record_nodes=record_nodes,
    )
