"""Transistor-level standard-cell library and testbench construction."""

from .builders import (
    INPUT_NAMES,
    build_aoi21,
    build_inverter,
    build_nand,
    build_nor,
    build_oai21,
)
from .cell import Cell, LogicFunction, truth_table
from .library import CellLibrary, default_library
from .testbench import (
    CellTestbench,
    attach_fanout_inverters,
    build_testbench,
    fanout_capacitance,
)

__all__ = [
    "Cell",
    "LogicFunction",
    "truth_table",
    "build_inverter",
    "build_nand",
    "build_nor",
    "build_aoi21",
    "build_oai21",
    "INPUT_NAMES",
    "CellLibrary",
    "default_library",
    "CellTestbench",
    "build_testbench",
    "attach_fanout_inverters",
    "fanout_capacitance",
]
