"""A small standard-cell library assembled from the transistor-level builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import NetlistError
from ..technology.process import Technology, default_technology
from .builders import build_aoi21, build_inverter, build_nand, build_nor, build_oai21
from .cell import Cell

__all__ = ["CellLibrary", "default_library"]


@dataclass
class CellLibrary:
    """A named collection of cells sharing one technology.

    The library behaves like a mapping from cell name to :class:`Cell` and
    additionally knows how to create drive-strength variants on demand.
    """

    name: str
    technology: Technology
    cells: Dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> Cell:
        if cell.name in self.cells:
            raise NetlistError(f"library {self.name!r} already contains a cell named {cell.name!r}")
        if cell.technology is not self.technology:
            # Different Technology objects with identical values are fine, but
            # mixing supplies would silently corrupt characterization.
            if abs(cell.technology.vdd - self.technology.vdd) > 1e-12:
                raise NetlistError(
                    f"cell {cell.name!r} was built for Vdd={cell.technology.vdd} V, "
                    f"library {self.name!r} uses {self.technology.vdd} V"
                )
        self.cells[cell.name] = cell
        return cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError as exc:
            raise NetlistError(
                f"no cell named {name!r} in library {self.name!r}; "
                f"available: {sorted(self.cells)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def names(self) -> List[str]:
        return sorted(self.cells)

    def get(self, name: str, default: Optional[Cell] = None) -> Optional[Cell]:
        return self.cells.get(name, default)

    # ------------------------------------------------------------------
    def cells_with_internal_nodes(self) -> List[Cell]:
        """Cells that have at least one stack node (MCSM is relevant for these)."""
        return [cell for cell in self.cells.values() if cell.internal_nodes]

    def multi_input_cells(self) -> List[Cell]:
        return [cell for cell in self.cells.values() if cell.num_inputs >= 2]

    def summary(self) -> str:
        lines = [f"Library {self.name!r} ({self.technology.name}, Vdd={self.technology.vdd} V)"]
        for name in self.names():
            cell = self.cells[name]
            lines.append(
                f"  {name}: {cell.num_inputs} input(s), "
                f"{cell.transistor_count()} transistors, "
                f"{len(cell.internal_nodes)} internal node(s)"
            )
        return "\n".join(lines)


def default_library(
    technology: Optional[Technology] = None,
    drive_strengths: Sequence[float] = (1.0,),
    name: str = "repro130",
) -> CellLibrary:
    """Build the default library: INV, NAND2/3, NOR2/3, AOI21, OAI21.

    Parameters
    ----------
    technology:
        Technology to build for; defaults to the generic 130 nm definition.
    drive_strengths:
        Drive variants to generate for every cell type (1.0 -> ``_X1`` ...).
    """
    technology = technology or default_technology()
    library = CellLibrary(name=name, technology=technology)
    generators: List[Callable[[Technology, float], Cell]] = [
        lambda tech, drive: build_inverter(tech, drive),
        lambda tech, drive: build_nand(tech, 2, drive),
        lambda tech, drive: build_nand(tech, 3, drive),
        lambda tech, drive: build_nor(tech, 2, drive),
        lambda tech, drive: build_nor(tech, 3, drive),
        lambda tech, drive: build_aoi21(tech, drive),
        lambda tech, drive: build_oai21(tech, drive),
    ]
    for drive in drive_strengths:
        for generator in generators:
            library.add(generator(technology, drive))
    return library
