"""Transistor-level generators for the standard cells used in the paper.

The paper evaluates inverters, NAND and NOR cells.  The generators below also
provide AOI21 / OAI21 so that the STA layer and the extended tests have
multi-stack cells to work with.

Topology conventions (matching Fig. 2 of the paper for NOR2):

* NOR-k: the PMOS pull-up is a series stack from ``vdd`` to ``out``; the
  device *adjacent to the output* is gated by the first input (``A``), so the
  stack node directly above the output device is internal node ``n1`` — the
  node the paper calls *N*.  The NMOS pull-down devices are in parallel.
* NAND-k: the NMOS pull-down is a series stack from ``out`` to ground with
  the device adjacent to the output gated by ``A`` (stack node ``n1`` below
  it); the PMOS pull-up devices are in parallel.

Sizing: parallel devices use the technology's unit widths; series devices are
up-sized by the stack depth so that the worst-case drive resistance roughly
matches the unit inverter, which is standard practice and keeps the delays of
different cells comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..exceptions import NetlistError
from ..spice.netlist import Circuit
from ..technology.process import Technology
from .cell import OUTPUT_NODE, SUPPLY_NODE, Cell

__all__ = [
    "build_inverter",
    "build_nand",
    "build_nor",
    "build_aoi21",
    "build_oai21",
    "INPUT_NAMES",
    "InverterFunction",
    "NorFunction",
    "NandFunction",
    "Aoi21Function",
    "Oai21Function",
]

#: Default input pin names, in order.
INPUT_NAMES = ("A", "B", "C", "D")


# Logic functions are module-level callable dataclasses (not lambdas or
# closures) so that Cell objects are picklable — the parallel runtime ships
# cells to worker processes.
@dataclass(frozen=True)
class InverterFunction:
    def __call__(self, values: Mapping[str, int]) -> int:
        return 0 if values["A"] else 1


@dataclass(frozen=True)
class NorFunction:
    inputs: Tuple[str, ...]

    def __call__(self, values: Mapping[str, int]) -> int:
        return 0 if any(values[p] for p in self.inputs) else 1


@dataclass(frozen=True)
class NandFunction:
    inputs: Tuple[str, ...]

    def __call__(self, values: Mapping[str, int]) -> int:
        return 0 if all(values[p] for p in self.inputs) else 1


@dataclass(frozen=True)
class Aoi21Function:
    def __call__(self, values: Mapping[str, int]) -> int:
        return 0 if (values["A"] and values["B"]) or values["C"] else 1


@dataclass(frozen=True)
class Oai21Function:
    def __call__(self, values: Mapping[str, int]) -> int:
        return 0 if (values["A"] or values["B"]) and values["C"] else 1


def _input_names(count: int) -> Tuple[str, ...]:
    if count < 1 or count > len(INPUT_NAMES):
        raise NetlistError(f"unsupported input count {count}")
    return INPUT_NAMES[:count]


def build_inverter(technology: Technology, drive_strength: float = 1.0, name: str = "") -> Cell:
    """A static CMOS inverter."""
    cell_name = name or f"INV_X{drive_strength:g}"
    circuit = Circuit(cell_name)
    wn = technology.unit_nmos_width * drive_strength
    wp = technology.unit_pmos_width * drive_strength
    circuit.add_mosfet(OUTPUT_NODE, "A", "0", "0", technology.nmos, wn, name="MN1")
    circuit.add_mosfet(OUTPUT_NODE, "A", SUPPLY_NODE, SUPPLY_NODE, technology.pmos, wp, name="MP1")
    return Cell(
        name=cell_name,
        circuit=circuit,
        inputs=("A",),
        output=OUTPUT_NODE,
        internal_nodes=(),
        function=InverterFunction(),
        technology=technology,
        drive_strength=drive_strength,
    )


def build_nor(
    technology: Technology,
    num_inputs: int = 2,
    drive_strength: float = 1.0,
    name: str = "",
) -> Cell:
    """A NOR gate with a series PMOS stack and parallel NMOS devices."""
    inputs = _input_names(num_inputs)
    cell_name = name or f"NOR{num_inputs}_X{drive_strength:g}"
    circuit = Circuit(cell_name)
    wn = technology.unit_nmos_width * drive_strength
    wp = technology.unit_pmos_width * drive_strength * num_inputs

    # Parallel NMOS pull-down.
    for index, pin in enumerate(inputs, start=1):
        circuit.add_mosfet(OUTPUT_NODE, pin, "0", "0", technology.nmos, wn, name=f"MN{index}")

    # Series PMOS pull-up: out - P(A) - n1 - P(B) - n2 ... - vdd.
    internal_nodes: List[str] = []
    lower = OUTPUT_NODE
    for index, pin in enumerate(inputs, start=1):
        upper = SUPPLY_NODE if index == num_inputs else f"n{index}"
        if upper != SUPPLY_NODE:
            internal_nodes.append(upper)
        # PMOS: source is the node nearer vdd, drain the node nearer out.
        circuit.add_mosfet(lower, pin, upper, SUPPLY_NODE, technology.pmos, wp, name=f"MP{index}")
        lower = upper

    return Cell(
        name=cell_name,
        circuit=circuit,
        inputs=inputs,
        output=OUTPUT_NODE,
        internal_nodes=tuple(internal_nodes),
        function=NorFunction(inputs),
        technology=technology,
        drive_strength=drive_strength,
    )


def build_nand(
    technology: Technology,
    num_inputs: int = 2,
    drive_strength: float = 1.0,
    name: str = "",
) -> Cell:
    """A NAND gate with a series NMOS stack and parallel PMOS devices."""
    inputs = _input_names(num_inputs)
    cell_name = name or f"NAND{num_inputs}_X{drive_strength:g}"
    circuit = Circuit(cell_name)
    wn = technology.unit_nmos_width * drive_strength * num_inputs
    wp = technology.unit_pmos_width * drive_strength

    # Parallel PMOS pull-up.
    for index, pin in enumerate(inputs, start=1):
        circuit.add_mosfet(OUTPUT_NODE, pin, SUPPLY_NODE, SUPPLY_NODE, technology.pmos, wp, name=f"MP{index}")

    # Series NMOS pull-down: out - N(A) - n1 - N(B) - ... - gnd.
    internal_nodes: List[str] = []
    upper = OUTPUT_NODE
    for index, pin in enumerate(inputs, start=1):
        lower = "0" if index == num_inputs else f"n{index}"
        if lower != "0":
            internal_nodes.append(lower)
        circuit.add_mosfet(upper, pin, lower, "0", technology.nmos, wn, name=f"MN{index}")
        upper = lower

    return Cell(
        name=cell_name,
        circuit=circuit,
        inputs=inputs,
        output=OUTPUT_NODE,
        internal_nodes=tuple(internal_nodes),
        function=NandFunction(inputs),
        technology=technology,
        drive_strength=drive_strength,
    )


def build_aoi21(technology: Technology, drive_strength: float = 1.0, name: str = "") -> Cell:
    """AOI21: ``out = not(A and B or C)``.

    Pull-down: series (A, B) branch in parallel with C.  Pull-up: parallel
    (A, B) pair in series with C.  Internal nodes: ``n1`` inside the NMOS
    series branch (between the A and B devices) and ``n2`` between the PMOS
    pair and the C pull-up device.
    """
    cell_name = name or f"AOI21_X{drive_strength:g}"
    circuit = Circuit(cell_name)
    wn = technology.unit_nmos_width * drive_strength
    wp = technology.unit_pmos_width * drive_strength

    # NMOS: out -N(A)- n1 -N(B)- gnd, plus out -N(C)- gnd.
    circuit.add_mosfet(OUTPUT_NODE, "A", "n1", "0", technology.nmos, 2 * wn, name="MN_A")
    circuit.add_mosfet("n1", "B", "0", "0", technology.nmos, 2 * wn, name="MN_B")
    circuit.add_mosfet(OUTPUT_NODE, "C", "0", "0", technology.nmos, wn, name="MN_C")

    # PMOS: vdd -P(A)- n2 and vdd -P(B)- n2 (parallel), then n2 -P(C)- out.
    circuit.add_mosfet("n2", "A", SUPPLY_NODE, SUPPLY_NODE, technology.pmos, 2 * wp, name="MP_A")
    circuit.add_mosfet("n2", "B", SUPPLY_NODE, SUPPLY_NODE, technology.pmos, 2 * wp, name="MP_B")
    circuit.add_mosfet(OUTPUT_NODE, "C", "n2", SUPPLY_NODE, technology.pmos, 2 * wp, name="MP_C")

    return Cell(
        name=cell_name,
        circuit=circuit,
        inputs=("A", "B", "C"),
        output=OUTPUT_NODE,
        internal_nodes=("n1", "n2"),
        function=Aoi21Function(),
        technology=technology,
        drive_strength=drive_strength,
    )


def build_oai21(technology: Technology, drive_strength: float = 1.0, name: str = "") -> Cell:
    """OAI21: ``out = not((A or B) and C)``.

    Pull-down: parallel (A, B) pair in series with C.  Pull-up: series (A, B)
    stack in parallel with C.  Internal nodes: ``n1`` between the NMOS pair
    and the C pull-down device, ``n2`` inside the PMOS series stack.
    """
    cell_name = name or f"OAI21_X{drive_strength:g}"
    circuit = Circuit(cell_name)
    wn = technology.unit_nmos_width * drive_strength
    wp = technology.unit_pmos_width * drive_strength

    # NMOS: out -N(A)- n1 and out -N(B)- n1 (parallel), then n1 -N(C)- gnd.
    circuit.add_mosfet(OUTPUT_NODE, "A", "n1", "0", technology.nmos, 2 * wn, name="MN_A")
    circuit.add_mosfet(OUTPUT_NODE, "B", "n1", "0", technology.nmos, 2 * wn, name="MN_B")
    circuit.add_mosfet("n1", "C", "0", "0", technology.nmos, 2 * wn, name="MN_C")

    # PMOS: out -P(A)- n2 -P(B)- vdd (series), plus out -P(C)- vdd.
    circuit.add_mosfet(OUTPUT_NODE, "A", "n2", SUPPLY_NODE, technology.pmos, 2 * wp, name="MP_A")
    circuit.add_mosfet("n2", "B", SUPPLY_NODE, SUPPLY_NODE, technology.pmos, 2 * wp, name="MP_B")
    circuit.add_mosfet(OUTPUT_NODE, "C", SUPPLY_NODE, SUPPLY_NODE, technology.pmos, wp, name="MP_C")

    return Cell(
        name=cell_name,
        circuit=circuit,
        inputs=("A", "B", "C"),
        output=OUTPUT_NODE,
        internal_nodes=("n1", "n2"),
        function=Oai21Function(),
        technology=technology,
        drive_strength=drive_strength,
    )
