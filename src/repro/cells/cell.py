"""Transistor-level standard-cell description.

A :class:`Cell` bundles a transistor netlist (a :class:`repro.spice.Circuit`
without supplies or stimuli), its pin list, its logic function and the names
of its internal (stack) nodes.  The characterization procedures and the
reference testbenches both operate on this object.

Node-name conventions inside a cell circuit:

* input pins use their pin names (``"A"``, ``"B"``, ...),
* the output node is ``"out"``,
* the positive supply is ``"vdd"`` and ground is ``"0"``,
* internal stack nodes are ``"n1"``, ``"n2"``, ... in order of distance from
  the output node of their stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import NetlistError
from ..spice.elements import Mosfet
from ..spice.netlist import Circuit
from ..technology.mosfet import terminal_capacitances
from ..technology.process import Technology

__all__ = ["Cell", "LogicFunction", "truth_table"]

#: A logic function maps a pin-name -> 0/1 assignment to the output value.
LogicFunction = Callable[[Mapping[str, int]], int]

OUTPUT_NODE = "out"
SUPPLY_NODE = "vdd"


def truth_table(function: LogicFunction, inputs: Sequence[str]) -> Dict[Tuple[int, ...], int]:
    """Enumerate a cell's truth table over the given input ordering."""
    table: Dict[Tuple[int, ...], int] = {}
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        assignment = dict(zip(inputs, bits))
        table[bits] = int(bool(function(assignment)))
    return table


@dataclass
class Cell:
    """A combinational standard cell described at transistor level.

    Attributes
    ----------
    name:
        Library cell name (e.g. ``"NOR2_X1"``).
    circuit:
        Transistor netlist; contains only MOSFETs (and their parasitic
        capacitor branches).  Supplies and stimuli are added by testbenches.
    inputs:
        Ordered input pin names.
    output:
        Output node name (always ``"out"`` for library cells).
    internal_nodes:
        Stack-node names, ordered so that ``internal_nodes[0]`` is the node
        the paper calls *N* for two-input gates (the node adjacent to the
        output inside the series stack).
    function:
        Logic function of the cell.
    technology:
        Technology the transistor geometry was generated for.
    drive_strength:
        Relative drive (1 for X1, 2 for X2, ...).
    """

    name: str
    circuit: Circuit
    inputs: Tuple[str, ...]
    output: str
    internal_nodes: Tuple[str, ...]
    function: LogicFunction
    technology: Technology
    drive_strength: float = 1.0
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.inputs:
            raise NetlistError(f"cell {self.name!r} has no input pins")
        for pin in self.inputs:
            if not self.circuit.has_node(pin):
                raise NetlistError(f"cell {self.name!r}: input pin {pin!r} missing from netlist")
        if not self.circuit.has_node(self.output):
            raise NetlistError(f"cell {self.name!r}: output node {self.output!r} missing from netlist")
        for node in self.internal_nodes:
            if not self.circuit.has_node(node):
                raise NetlistError(f"cell {self.name!r}: internal node {node!r} missing from netlist")

    # ------------------------------------------------------------------
    # Logic helpers
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate the logic function for a full input assignment."""
        missing = [pin for pin in self.inputs if pin not in assignment]
        if missing:
            raise NetlistError(f"cell {self.name!r}: missing input values for {missing}")
        return int(bool(self.function(assignment)))

    def truth_table(self) -> Dict[Tuple[int, ...], int]:
        return truth_table(self.function, self.inputs)

    def non_controlling_value(self, pin: str) -> int:
        """Logic value of ``pin`` for which the output still depends on the others.

        For a NOR gate this is 0, for a NAND gate 1.  Computed from the truth
        table: a value is non-controlling if, with the pin held at that value,
        the remaining inputs can still produce both output values (or, for a
        single-input cell, the output follows the input).
        """
        others = [p for p in self.inputs if p != pin]
        if pin not in self.inputs:
            raise NetlistError(f"cell {self.name!r} has no input pin {pin!r}")
        if not others:
            return 0
        for candidate in (0, 1):
            outputs = set()
            for bits in itertools.product((0, 1), repeat=len(others)):
                assignment = dict(zip(others, bits))
                assignment[pin] = candidate
                outputs.add(self.evaluate(assignment))
            if len(outputs) == 2:
                return candidate
        raise NetlistError(
            f"cell {self.name!r}: pin {pin!r} has no non-controlling value "
            "(output never depends on the other inputs)"
        )

    def controlling_value(self, pin: str) -> int:
        """The complement of :meth:`non_controlling_value`."""
        return 1 - self.non_controlling_value(pin)

    def output_for_pin(self, pin: str, pin_value: int) -> int:
        """Output value with ``pin`` at ``pin_value`` and others non-controlling."""
        assignment = {p: self.non_controlling_value(p) for p in self.inputs if p != pin}
        assignment[pin] = pin_value
        return self.evaluate(assignment)

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def mosfets(self) -> List[Mosfet]:
        return self.circuit.mosfets()

    def transistor_count(self) -> int:
        return len(self.mosfets())

    def stack_node(self) -> Optional[str]:
        """The primary internal stack node (the paper's node *N*), if any."""
        return self.internal_nodes[0] if self.internal_nodes else None

    def pin_gate_capacitance(self, pin: str) -> float:
        """Sum of gate-terminal capacitances of devices driven by ``pin`` (F).

        This is a structural estimate used for fanout-load construction and
        as a sanity bound on the characterized input capacitance ``C_A``.
        """
        if pin not in self.inputs:
            raise NetlistError(f"cell {self.name!r} has no input pin {pin!r}")
        total = 0.0
        for device in self.mosfets():
            if device.gate != pin:
                continue
            assert device.params is not None and device.length is not None
            caps = terminal_capacitances(device.params, device.width, device.length)
            total += caps["cgs"] + caps["cgd"] + caps["cgb"]
        return total

    def output_diffusion_capacitance(self) -> float:
        """Sum of junction capacitances attached to the output node (F)."""
        total = 0.0
        for device in self.mosfets():
            assert device.params is not None and device.length is not None
            caps = terminal_capacitances(device.params, device.width, device.length)
            if device.drain == self.output:
                total += caps["cdb"]
            if device.source == self.output:
                total += caps["csb"]
        return total

    def internal_node_capacitance_estimate(self, node: Optional[str] = None) -> float:
        """Structural estimate of the capacitance on an internal node (F)."""
        node = node or self.stack_node()
        if node is None:
            return 0.0
        total = 0.0
        for device in self.mosfets():
            assert device.params is not None and device.length is not None
            caps = terminal_capacitances(device.params, device.width, device.length)
            if device.drain == node:
                total += caps["cdb"]
            if device.source == node:
                total += caps["csb"]
        return total

    def describe(self) -> str:
        """Multi-line human-readable description used by reports/examples."""
        lines = [
            f"Cell {self.name} (drive x{self.drive_strength:g}, {self.transistor_count()} transistors)",
            f"  inputs : {', '.join(self.inputs)}",
            f"  output : {self.output}",
            f"  internal nodes: {', '.join(self.internal_nodes) if self.internal_nodes else '(none)'}",
        ]
        table = self.truth_table()
        header = " ".join(self.inputs) + " | " + self.output
        lines.append("  truth table: " + header)
        for bits, value in sorted(table.items()):
            lines.append("               " + " ".join(str(b) for b in bits) + " | " + str(value))
        return "\n".join(lines)
