"""Reference testbench construction around a standard cell.

These helpers build the transistor-level circuits that play the role of the
paper's HSPICE decks: a cell instance with stimulus sources on its inputs,
supply rails, and a load (a plain capacitor or a chain of real fanout
inverters).  The same testbench object is reused by characterization sweeps
and by the golden-waveform generation of each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import NetlistError
from ..spice.netlist import GROUND, Circuit
from ..spice.sources import DCValue, Stimulus
from ..technology.process import Technology
from .cell import OUTPUT_NODE, SUPPLY_NODE, Cell

__all__ = ["CellTestbench", "build_testbench", "attach_fanout_inverters", "fanout_capacitance"]

#: Capacitance loading the output of each fanout inverter in an FO-k load.
FANOUT_STAGE_LOAD = 2e-15


@dataclass
class CellTestbench:
    """A cell under test embedded in a complete, solvable circuit.

    Attributes
    ----------
    circuit:
        The full circuit (cell + supplies + input sources + load).
    cell:
        The cell under test.
    input_source_names:
        Pin name -> name of the voltage source driving that pin.
    supply_source_name:
        Name of the Vdd source (its current is the cell supply current).
    output_node / internal_nodes:
        Node names of the cell output and internal nodes inside ``circuit``
        (identical to the cell's own names because the cell is merged without
        a prefix on its ports).
    """

    circuit: Circuit
    cell: Cell
    input_source_names: Dict[str, str]
    supply_source_name: str
    output_node: str
    internal_nodes: Tuple[str, ...]
    load_capacitor_name: Optional[str] = None
    fanout_cells: List[str] = field(default_factory=list)

    def input_source(self, pin: str):
        """The stimulus source element driving ``pin``."""
        return self.circuit.element(self.input_source_names[pin])

    def set_input_stimulus(self, pin: str, stimulus: Union[float, Stimulus]) -> None:
        """Replace the stimulus of one input pin in place."""
        source = self.input_source(pin)
        source.stimulus = stimulus if isinstance(stimulus, Stimulus) else DCValue(float(stimulus))


def build_testbench(
    cell: Cell,
    input_stimuli: Optional[Mapping[str, Union[float, Stimulus]]] = None,
    load_capacitance: Optional[float] = None,
    fanout: int = 0,
    name: str = "",
) -> CellTestbench:
    """Instantiate a cell with supplies, input sources and an output load.

    Parameters
    ----------
    cell:
        The cell under test.
    input_stimuli:
        Pin -> stimulus (or DC float).  Unlisted pins default to 0 V.
    load_capacitance:
        Optional lumped capacitive load at the output.
    fanout:
        Number of real unit inverters attached to the output (FO-k load).
        May be combined with ``load_capacitance``.
    """
    technology = cell.technology
    tb_name = name or f"tb_{cell.name}"
    circuit = Circuit(tb_name)
    supply = circuit.add_voltage_source(SUPPLY_NODE, GROUND, technology.vdd, name="VDD")

    input_sources: Dict[str, str] = {}
    stimuli = dict(input_stimuli or {})
    for pin in cell.inputs:
        stimulus = stimuli.pop(pin, 0.0)
        source = circuit.add_voltage_source(pin, GROUND, stimulus, name=f"V{pin}")
        input_sources[pin] = source.name
    if stimuli:
        raise NetlistError(f"stimuli given for unknown pins {sorted(stimuli)} of cell {cell.name!r}")

    # Merge the cell netlist: ports keep their names, internals stay unique.
    port_map = {pin: pin for pin in cell.inputs}
    port_map[cell.output] = cell.output
    port_map[SUPPLY_NODE] = SUPPLY_NODE
    for node in cell.internal_nodes:
        port_map[node] = node
    circuit.merge(cell.circuit, prefix="dut_", node_map=port_map)

    load_name = None
    if load_capacitance is not None and load_capacitance > 0:
        load = circuit.add_capacitor(cell.output, GROUND, load_capacitance, name="CLOAD")
        load_name = load.name

    fanout_names: List[str] = []
    if fanout > 0:
        fanout_names = attach_fanout_inverters(circuit, cell.output, technology, fanout)

    return CellTestbench(
        circuit=circuit,
        cell=cell,
        input_source_names=input_sources,
        supply_source_name=supply.name,
        output_node=cell.output,
        internal_nodes=cell.internal_nodes,
        load_capacitor_name=load_name,
        fanout_cells=fanout_names,
    )


def attach_fanout_inverters(
    circuit: Circuit,
    node: str,
    technology: Technology,
    count: int,
    stage_load: float = FANOUT_STAGE_LOAD,
) -> List[str]:
    """Attach ``count`` unit inverters to ``node`` as a realistic FO-k load.

    Each fanout inverter's output is loaded with a small capacitor so that its
    own switching draws realistic Miller (kick-back) current through its input.
    Returns the list of name prefixes used for the fanout instances.
    """
    if count < 0:
        raise NetlistError("fanout count must be non-negative")
    from .builders import build_inverter  # local import to avoid a cycle

    prefixes: List[str] = []
    for index in range(count):
        prefix = f"fo{index}_"
        inverter = build_inverter(technology)
        node_map = {"A": node, SUPPLY_NODE: SUPPLY_NODE}
        circuit.merge(inverter.circuit, prefix=prefix, node_map=node_map)
        circuit.add_capacitor(f"{prefix}{OUTPUT_NODE}", GROUND, stage_load, name=f"{prefix}cload")
        prefixes.append(prefix)
    return prefixes


def fanout_capacitance(technology: Technology, count: int) -> float:
    """Lumped-capacitance equivalent of an FO-``count`` inverter load.

    Used when a current-source model needs a single capacitive load number
    comparable to the transistor-level FO-k testbench.
    """
    from .builders import build_inverter

    inverter = build_inverter(technology)
    return count * inverter.pin_gate_capacitance("A")
