"""Constructors for the stimulus waveforms used in the experiments.

The experiments need three families of input waveforms:

* saturated ramps (the standard characterization stimulus),
* multi-step pattern waveforms that realize an "input history" such as
  '10' -> '11' -> '00' on the two inputs of a NOR2 gate (Section 2.2 of the
  paper), and
* noisy waveforms — a nominal transition with a crosstalk-induced glitch
  superimposed (Section 4, Fig. 12).

Each builder returns both an analytic :class:`~repro.spice.sources.Stimulus`
(for the reference simulator) and, on request, a sampled
:class:`~repro.waveform.Waveform` (for the current-source models), so both
sides of every comparison see exactly the same input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import WaveformError
from ..spice.sources import PiecewiseLinear, SaturatedRamp, Stimulus
from .waveform import Waveform

__all__ = [
    "ramp_waveform",
    "pattern_stimulus",
    "pattern_waveforms",
    "glitch_pulse_stimulus",
    "noisy_transition",
    "InputPattern",
]


def ramp_waveform(
    v_start: float,
    v_end: float,
    start_time: float,
    transition_time: float,
    t_stop: float,
    t_begin: float = 0.0,
    num_samples: int = 400,
    name: str = "",
) -> Waveform:
    """Sampled saturated ramp covering ``[t_begin, t_stop]``."""
    stimulus = SaturatedRamp(v_start, v_end, start_time, transition_time)
    return Waveform.from_function(stimulus, t_begin, t_stop, num_samples, name=name)


@dataclass(frozen=True)
class InputPattern:
    """A per-pin sequence of logic states realized with saturated ramps.

    Attributes
    ----------
    levels:
        Logic levels (0 or 1) the pin takes, in order.  ``levels[k]`` is held
        until ``switch_times[k]`` at which point the pin ramps to
        ``levels[k + 1]``.
    switch_times:
        Times at which each transition *starts*; must have exactly
        ``len(levels) - 1`` entries and be increasing.
    transition_time:
        Ramp duration of every transition in seconds.
    """

    levels: Tuple[int, ...]
    switch_times: Tuple[float, ...]
    transition_time: float

    def __post_init__(self) -> None:
        if len(self.levels) < 1:
            raise WaveformError("pattern needs at least one level")
        if len(self.switch_times) != len(self.levels) - 1:
            raise WaveformError(
                "switch_times must have exactly len(levels) - 1 entries "
                f"(got {len(self.switch_times)} for {len(self.levels)} levels)"
            )
        if any(t1 <= t0 for t0, t1 in zip(self.switch_times, self.switch_times[1:])):
            raise WaveformError("switch_times must be strictly increasing")
        if self.transition_time <= 0:
            raise WaveformError("transition_time must be positive")
        if any(level not in (0, 1) for level in self.levels):
            raise WaveformError("levels must be 0 or 1")


def pattern_stimulus(pattern: InputPattern, vdd: float) -> PiecewiseLinear:
    """Realize an :class:`InputPattern` as a piecewise-linear stimulus."""
    points: List[Tuple[float, float]] = []
    current_level = pattern.levels[0] * vdd
    points.append((0.0, current_level))
    for level, start in zip(pattern.levels[1:], pattern.switch_times):
        target = level * vdd
        points.append((start, current_level))
        points.append((start + pattern.transition_time, target))
        current_level = target
    return PiecewiseLinear(points=tuple(points))


def pattern_waveforms(
    patterns: Dict[str, InputPattern],
    vdd: float,
    t_stop: float,
    num_samples: int = 2000,
) -> Dict[str, Waveform]:
    """Sample a dictionary of per-pin patterns onto a common time grid."""
    waveforms: Dict[str, Waveform] = {}
    for pin, pattern in patterns.items():
        stimulus = pattern_stimulus(pattern, vdd)
        waveforms[pin] = Waveform.from_function(stimulus, 0.0, t_stop, num_samples, name=pin)
    return waveforms


def glitch_pulse_stimulus(
    baseline: float,
    amplitude: float,
    start_time: float,
    rise_time: float,
    width: float,
    fall_time: float,
) -> PiecewiseLinear:
    """A triangular/trapezoidal glitch riding on a DC baseline."""
    if rise_time <= 0 or fall_time <= 0:
        raise WaveformError("glitch edges must have positive duration")
    points = (
        (0.0, baseline),
        (start_time, baseline),
        (start_time + rise_time, baseline + amplitude),
        (start_time + rise_time + width, baseline + amplitude),
        (start_time + rise_time + width + fall_time, baseline),
    )
    return PiecewiseLinear(points=points)


def noisy_transition(
    vdd: float,
    transition_start: float,
    transition_time: float,
    rising: bool,
    noise_peak: float,
    noise_time: float,
    noise_width: float,
    t_stop: float,
    num_samples: int = 2000,
    name: str = "noisy",
) -> Waveform:
    """A nominal transition with a crosstalk-like bump superimposed.

    This is the *analytic* noisy-waveform builder used by unit tests and by
    the quick examples; the Fig. 12 experiment itself generates its noisy
    victim waveforms by actually simulating the coupled victim/aggressor
    drivers with the reference simulator (see :mod:`repro.interconnect`).
    """
    base = SaturatedRamp(
        0.0 if rising else vdd,
        vdd if rising else 0.0,
        transition_start,
        transition_time,
    )
    half = noise_width / 2.0
    if half <= 0:
        raise WaveformError("noise_width must be positive")
    bump_points = (
        (0.0, 0.0),
        (noise_time - half, 0.0),
        (noise_time, noise_peak),
        (noise_time + half, 0.0),
        (t_stop, 0.0),
    )
    bump = PiecewiseLinear(points=tuple(sorted(bump_points)))
    times = np.linspace(0.0, t_stop, num_samples)
    values = np.array([base(t) + bump(t) for t in times])
    return Waveform(times, np.clip(values, -0.3 * vdd, 1.3 * vdd), name=name)
