"""Sampled voltage waveforms.

A :class:`Waveform` is an immutable-ish pair of (times, values) arrays with
the resampling, clipping and algebra operations that the characterization and
model-evaluation code needs.  Waveforms are the lingua franca between the
transistor-level reference simulator, the current-source models and the
metric functions: everything that compares "model vs SPICE" does so through
this class.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import WaveformError

__all__ = ["Waveform"]


class Waveform:
    """A sampled scalar signal ``value(time)``.

    Parameters
    ----------
    times:
        Strictly increasing sample times in seconds.
    values:
        Sample values (volts for all uses in this library).
    name:
        Optional label used in reports and error messages.
    """

    __slots__ = ("times", "values", "name")

    def __init__(self, times: Sequence[float], values: Sequence[float], name: str = ""):
        times_array = np.asarray(times, dtype=float)
        values_array = np.asarray(values, dtype=float)
        if times_array.ndim != 1 or values_array.ndim != 1:
            raise WaveformError("times and values must be one-dimensional")
        if times_array.size != values_array.size:
            raise WaveformError(
                f"times ({times_array.size}) and values ({values_array.size}) differ in length"
            )
        if times_array.size < 2:
            raise WaveformError("a waveform needs at least two samples")
        if np.any(np.diff(times_array) < 0):
            raise WaveformError("times must be non-decreasing")
        self.times = times_array
        self.values = values_array
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        function: Callable[[float], float],
        t_start: float,
        t_stop: float,
        num_samples: int = 500,
        name: str = "",
    ) -> "Waveform":
        """Sample a callable ``f(t)`` uniformly over ``[t_start, t_stop]``."""
        if t_stop <= t_start:
            raise WaveformError("t_stop must exceed t_start")
        if num_samples < 2:
            raise WaveformError("num_samples must be at least 2")
        times = np.linspace(t_start, t_stop, num_samples)
        values = np.array([function(t) for t in times], dtype=float)
        return cls(times, values, name=name)

    @classmethod
    def constant(
        cls, value: float, t_start: float, t_stop: float, name: str = ""
    ) -> "Waveform":
        """A flat waveform at a fixed value."""
        return cls([t_start, t_stop], [value, value], name=name)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times.size)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Waveform{label}: {len(self)} samples, "
            f"t=[{self.times[0]:.3e}, {self.times[-1]:.3e}]s, "
            f"v=[{self.values.min():.3f}, {self.values.max():.3f}]>"
        )

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start

    def value_at(self, time: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Linearly interpolated value; clamped outside the time range."""
        result = np.interp(time, self.times, self.values)
        if np.isscalar(time):
            return float(result)
        return result

    def __call__(self, time: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        return self.value_at(time)

    def initial_value(self) -> float:
        return float(self.values[0])

    def final_value(self) -> float:
        return float(self.values[-1])

    def minimum(self) -> float:
        return float(self.values.min())

    def maximum(self) -> float:
        return float(self.values.max())

    def derivative_at(self, time: float) -> float:
        """Numerical slope (V/s) by central differencing on the sample grid."""
        idx = int(np.searchsorted(self.times, time))
        idx = min(max(idx, 1), len(self) - 1)
        dt = self.times[idx] - self.times[idx - 1]
        if dt <= 0:
            return 0.0
        return float((self.values[idx] - self.values[idx - 1]) / dt)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def resample(self, new_times: Sequence[float]) -> "Waveform":
        """Resample onto a new time grid (values clamped outside the range)."""
        new_times_array = np.asarray(new_times, dtype=float)
        return Waveform(new_times_array, self.value_at(new_times_array), name=self.name)

    def resample_uniform(self, num_samples: int) -> "Waveform":
        """Resample onto a uniform grid with ``num_samples`` points."""
        return self.resample(np.linspace(self.t_start, self.t_stop, num_samples))

    def shifted(self, delta_t: float) -> "Waveform":
        """Shift the waveform in time by ``delta_t`` seconds."""
        return Waveform(self.times + delta_t, self.values.copy(), name=self.name)

    def scaled(self, factor: float) -> "Waveform":
        """Scale values by a constant factor."""
        return Waveform(self.times.copy(), self.values * factor, name=self.name)

    def offset(self, delta_v: float) -> "Waveform":
        """Add a constant offset to all values."""
        return Waveform(self.times.copy(), self.values + delta_v, name=self.name)

    def clipped(self, low: float, high: float) -> "Waveform":
        """Clip values into ``[low, high]``."""
        if high < low:
            raise WaveformError("clip range is empty")
        return Waveform(self.times.copy(), np.clip(self.values, low, high), name=self.name)

    def window(self, t_start: float, t_stop: float) -> "Waveform":
        """Restrict to a time window, adding interpolated boundary samples."""
        if t_stop <= t_start:
            raise WaveformError("window must have positive duration")
        mask = (self.times > t_start) & (self.times < t_stop)
        inner_times = self.times[mask]
        times = np.concatenate([[t_start], inner_times, [t_stop]])
        return Waveform(times, self.value_at(times), name=self.name)

    def renamed(self, name: str) -> "Waveform":
        return Waveform(self.times.copy(), self.values.copy(), name=name)

    def to_dict(self) -> dict:
        """Canonical content representation (used for job content hashing)."""
        return {"name": self.name, "times": self.times, "values": self.values}

    # ------------------------------------------------------------------
    # Algebra (on a merged time grid)
    # ------------------------------------------------------------------
    def _binary(self, other: Union["Waveform", float], op) -> "Waveform":
        if isinstance(other, Waveform):
            grid = np.union1d(self.times, other.times)
            return Waveform(grid, op(self.value_at(grid), other.value_at(grid)), name=self.name)
        return Waveform(self.times.copy(), op(self.values, float(other)), name=self.name)

    def __add__(self, other: Union["Waveform", float]) -> "Waveform":
        return self._binary(other, np.add)

    def __sub__(self, other: Union["Waveform", float]) -> "Waveform":
        return self._binary(other, np.subtract)

    def __mul__(self, other: float) -> "Waveform":
        return self.scaled(float(other))

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Export helpers
    # ------------------------------------------------------------------
    def to_pairs(self) -> Iterable[Tuple[float, float]]:
        """Yield (time, value) pairs (useful for text reports and plotting)."""
        return zip(self.times.tolist(), self.values.tolist())

    def to_pwl_stimulus(self):
        """Convert to a :class:`repro.spice.PiecewiseLinear` stimulus."""
        from ..spice.sources import PiecewiseLinear

        return PiecewiseLinear(points=tuple(zip(self.times.tolist(), self.values.tolist())))
