"""Waveform containers, stimulus builders and timing/accuracy metrics."""

from .builders import (
    InputPattern,
    glitch_pulse_stimulus,
    noisy_transition,
    pattern_stimulus,
    pattern_waveforms,
    ramp_waveform,
)
from .metrics import (
    EdgeMeasurement,
    crossing_time,
    crossing_times,
    delay_and_slew,
    delay_error,
    normalized_rmse,
    peak_error,
    propagation_delay,
    rmse,
    transition_time,
)
from .level_tensor import LevelTensor
from .waveform import Waveform

__all__ = [
    "Waveform",
    "LevelTensor",
    "InputPattern",
    "ramp_waveform",
    "pattern_stimulus",
    "pattern_waveforms",
    "glitch_pulse_stimulus",
    "noisy_transition",
    "crossing_time",
    "crossing_times",
    "propagation_delay",
    "transition_time",
    "delay_and_slew",
    "rmse",
    "normalized_rmse",
    "peak_error",
    "delay_error",
    "EdgeMeasurement",
]
