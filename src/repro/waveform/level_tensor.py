"""Whole-level waveform tensors: structure-of-arrays signal storage.

A :class:`LevelTensor` carries every net of one topological level of the
timing graph as a single flat ``(rows, corners, samples)`` ndarray, plus the
per-row uniform time-grid parameters (``t0``/``dt`` vectors) and the
net-name ↔ row-index maps.  It replaces lists of per-net
:class:`~repro.waveform.waveform.Waveform` objects on the propagation hot
path: the levelized engines gather a level's inputs and scatter its outputs
as row-index views into these tensors, and the propagation-cache layer
spills each level as **one** store record (one memmap view per level rather
than one per instance).

The container is deliberately dumb storage:

* ``values[row, corner]`` is the sample vector of one net at one corner;
  the single-corner case (``corners == 1``) is today's engines, the corner
  axis exists so MMMC sweeps can batch corners without a layout change.
* rows may carry *different* uniform grids (``t0[row]``, ``dt[row]``) — a
  level mixes nets only in storage, not in time semantics;
* :meth:`waveform` hands out a cheap :class:`Waveform` **view** adapter
  (the value vector is shared, never copied), so every API boundary that
  speaks ``Waveform`` — results, metrics, plots — is unchanged.

Mutating a tensor row mutates every view taken from it (and vice versa);
tensors decoded from the packed store are read-only memmap views.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import WaveformError
from .waveform import Waveform

__all__ = ["LevelTensor"]


class LevelTensor:
    """A level's nets as one ``(rows, corners, samples)`` value tensor.

    Parameters
    ----------
    names:
        One net name per row, in row order.  Names must be unique.
    values:
        ``(rows, corners, samples)`` sample array (volts).  A 2-D
        ``(rows, samples)`` array is promoted to a single corner.
    t0 / dt:
        Per-row uniform-grid origin and spacing in seconds.  Scalars
        broadcast over all rows.
    """

    __slots__ = ("names", "values", "t0", "dt", "_rows")

    def __init__(
        self,
        names: Sequence[str],
        values: np.ndarray,
        t0,
        dt,
    ):
        values = np.asarray(values, dtype=float)
        if values.ndim == 2:
            values = values[:, np.newaxis, :]
        if values.ndim != 3:
            raise WaveformError("LevelTensor values must be (rows, corners, samples)")
        num_rows = values.shape[0]
        names = tuple(str(name) for name in names)
        if len(names) != num_rows:
            raise WaveformError(
                f"LevelTensor has {num_rows} rows but {len(names)} names"
            )
        if len(set(names)) != len(names):
            raise WaveformError("LevelTensor row names must be unique")
        if values.shape[2] < 2:
            raise WaveformError("LevelTensor rows need at least two samples")
        t0 = np.broadcast_to(np.asarray(t0, dtype=float), (num_rows,)).copy()
        dt = np.broadcast_to(np.asarray(dt, dtype=float), (num_rows,)).copy()
        if np.any(dt <= 0):
            raise WaveformError("LevelTensor row spacing dt must be positive")
        self.names = names
        self.values = values
        self.t0 = t0
        self.dt = dt
        self._rows: Dict[str, int] = {name: row for row, name in enumerate(names)}

    # ------------------------------------------------------------------
    # Shape / lookup
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_corners(self) -> int:
        return int(self.values.shape[1])

    @property
    def num_samples(self) -> int:
        return int(self.values.shape[2])

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._rows

    def __repr__(self) -> str:
        return (
            f"<LevelTensor: {self.num_rows} rows x {self.num_corners} corners "
            f"x {self.num_samples} samples>"
        )

    def row_of(self, name: str) -> int:
        try:
            return self._rows[name]
        except KeyError:
            raise WaveformError(f"net {name!r} has no row in this level tensor") from None

    def rows_of(self, names: Sequence[str]) -> np.ndarray:
        """Row-index array for a batch of nets (the gather primitive)."""
        return np.array([self.row_of(name) for name in names], dtype=np.intp)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def row_times(self, row: int) -> np.ndarray:
        """The uniform sample grid of one row, reconstructed from t0/dt."""
        return self.t0[row] + self.dt[row] * np.arange(self.num_samples)

    def row_values(self, row: int, corner: int = 0) -> np.ndarray:
        """Zero-copy sample-vector view of one row at one corner."""
        return self.values[row, corner]

    def waveform(self, name: str, corner: int = 0) -> Waveform:
        """A :class:`Waveform` view of one net (values shared, not copied)."""
        return self.waveform_at(self.row_of(name), corner=corner)

    def waveform_at(self, row: int, corner: int = 0) -> Waveform:
        """A :class:`Waveform` view of one row (values shared, not copied)."""
        return Waveform(self.row_times(row), self.values[row, corner], name=self.names[row])

    def waveforms(self, corner: int = 0) -> Dict[str, Waveform]:
        """Name → waveform-view map of every row at one corner."""
        return {
            name: self.waveform_at(row, corner=corner)
            for name, row in self._rows.items()
        }

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    # ------------------------------------------------------------------
    # Construction from waveforms
    # ------------------------------------------------------------------
    @classmethod
    def from_waveforms(
        cls, waveforms: Mapping[str, Waveform], copy: bool = True
    ) -> "LevelTensor":
        """Pack same-length uniform waveforms into one single-corner tensor.

        Every waveform must be sampled on a *uniform* grid and all must share
        one sample count; rows keep their own ``t0``/``dt``, so a level whose
        nets live on different (uniform) windows still packs.
        """
        if not waveforms:
            raise WaveformError("cannot build a LevelTensor from zero waveforms")
        names: List[str] = []
        rows: List[np.ndarray] = []
        t0: List[float] = []
        dt: List[float] = []
        samples = None
        for name, wave in waveforms.items():
            if samples is None:
                samples = len(wave)
            elif len(wave) != samples:
                raise WaveformError(
                    f"waveform {name!r} has {len(wave)} samples, expected {samples}"
                )
            spacing = np.diff(wave.times)
            step = (wave.t_stop - wave.t_start) / (len(wave) - 1)
            if step <= 0 or np.any(np.abs(spacing - step) > 1e-9 * max(step, 1e-30)):
                raise WaveformError(
                    f"waveform {name!r} is not uniformly sampled; "
                    "LevelTensor rows require uniform grids"
                )
            names.append(name)
            rows.append(wave.values)
            t0.append(wave.t_start)
            dt.append(step)
        stacked = np.stack(rows)[:, np.newaxis, :]
        if copy:
            stacked = np.ascontiguousarray(stacked)
        return cls(names, stacked, np.array(t0), np.array(dt))

    # ------------------------------------------------------------------
    # Codec support (see repro.runtime.cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical content representation (content hashing / reports)."""
        return {
            "names": list(self.names),
            "values": self.values,
            "t0": self.t0,
            "dt": self.dt,
        }

    def equals(self, other: "LevelTensor") -> bool:
        """Exact (bitwise-value) equality, for tests and codec round-trips."""
        return (
            self.names == other.names
            and self.values.shape == other.values.shape
            and bool(np.array_equal(self.values, other.values))
            and bool(np.array_equal(self.t0, other.t0))
            and bool(np.array_equal(self.dt, other.dt))
        )
