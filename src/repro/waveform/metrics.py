"""Timing and accuracy metrics on waveforms.

These are the measurements the paper reports: 50 % propagation delay, output
transition (slew) time, delay differences between scenarios, and the
normalized root-mean-square error (RMSE) between a model waveform and the
reference simulator waveform (paper Eq. (6)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import WaveformError
from .waveform import Waveform

__all__ = [
    "crossing_time",
    "crossing_times",
    "propagation_delay",
    "transition_time",
    "delay_and_slew",
    "rmse",
    "normalized_rmse",
    "peak_error",
    "delay_error",
    "EdgeMeasurement",
]


def crossing_times(
    waveform: Waveform,
    threshold: float,
    direction: str = "any",
) -> Tuple[float, ...]:
    """All times at which the waveform crosses ``threshold``.

    Parameters
    ----------
    waveform:
        Signal to inspect.
    threshold:
        Crossing level in volts.
    direction:
        ``"rise"`` (upward crossings only), ``"fall"`` (downward only) or
        ``"any"``.
    """
    if direction not in ("rise", "fall", "any"):
        raise WaveformError(f"unknown crossing direction {direction!r}")
    times = np.asarray(waveform.times, dtype=float)
    values = np.asarray(waveform.values, dtype=float)
    if len(values) < 2:
        return ()
    # Vectorized sweep: a crossing lives between samples whose below-threshold
    # flags differ (so v0 != v1 is guaranteed and the interpolation is safe).
    below = values < threshold
    flips = np.nonzero(below[:-1] != below[1:])[0]
    if direction == "rise":
        flips = flips[below[flips]]
    elif direction == "fall":
        flips = flips[~below[flips]]
    if flips.size == 0:
        return ()
    v0, v1 = values[flips], values[flips + 1]
    t0, t1 = times[flips], times[flips + 1]
    frac = (threshold - v0) / (v1 - v0)
    return tuple(float(t) for t in t0 + frac * (t1 - t0))


def crossing_time(
    waveform: Waveform,
    threshold: float,
    direction: str = "any",
    occurrence: int = 0,
) -> float:
    """Time of the ``occurrence``-th crossing of ``threshold``.

    Raises
    ------
    WaveformError
        If the waveform never crosses the threshold (in that direction).
    """
    crossings = crossing_times(waveform, threshold, direction)
    if not crossings:
        raise WaveformError(
            f"waveform {waveform.name!r} never crosses {threshold:.3f} V ({direction})"
        )
    try:
        return crossings[occurrence]
    except IndexError as exc:
        raise WaveformError(
            f"waveform {waveform.name!r} crosses {threshold:.3f} V only "
            f"{len(crossings)} time(s); occurrence {occurrence} requested"
        ) from exc


def propagation_delay(
    input_waveform: Waveform,
    output_waveform: Waveform,
    vdd: float,
    input_threshold: float = 0.5,
    output_threshold: float = 0.5,
    input_direction: str = "any",
    output_direction: str = "any",
    input_occurrence: int = 0,
    output_occurrence: int = 0,
) -> float:
    """Propagation delay between input and output threshold crossings.

    Thresholds are given as fractions of ``vdd`` (0.5 = the 50 % delay used in
    the paper).  The delay can be negative for very fast cells with slow input
    ramps, as in real timing analysis.
    """
    t_in = crossing_time(
        input_waveform, input_threshold * vdd, input_direction, input_occurrence
    )
    t_out = crossing_time(
        output_waveform, output_threshold * vdd, output_direction, output_occurrence
    )
    return t_out - t_in


def transition_time(
    waveform: Waveform,
    vdd: float,
    low_fraction: float = 0.2,
    high_fraction: float = 0.8,
    direction: str = "rise",
) -> float:
    """Output transition (slew) time between two threshold fractions of Vdd."""
    if direction == "rise":
        t_low = crossing_time(waveform, low_fraction * vdd, "rise")
        t_high = crossing_time(waveform, high_fraction * vdd, "rise")
        return t_high - t_low
    if direction == "fall":
        t_high = crossing_time(waveform, high_fraction * vdd, "fall")
        t_low = crossing_time(waveform, low_fraction * vdd, "fall")
        return t_low - t_high
    raise WaveformError(f"unknown transition direction {direction!r}")


@dataclass(frozen=True)
class EdgeMeasurement:
    """Bundled delay + slew measurement of one output edge."""

    delay: float
    slew: float
    direction: str


def delay_and_slew(
    input_waveform: Waveform,
    output_waveform: Waveform,
    vdd: float,
    output_direction: str = "rise",
    input_direction: str = "any",
) -> EdgeMeasurement:
    """Convenience bundle of 50 % delay and 20-80 % slew for one edge."""
    delay = propagation_delay(
        input_waveform,
        output_waveform,
        vdd,
        input_direction=input_direction,
        output_direction=output_direction,
    )
    slew = transition_time(output_waveform, vdd, direction=output_direction)
    return EdgeMeasurement(delay=delay, slew=slew, direction=output_direction)


def _common_grid(reference: Waveform, candidate: Waveform, num_samples: Optional[int]) -> np.ndarray:
    t_start = max(reference.t_start, candidate.t_start)
    t_stop = min(reference.t_stop, candidate.t_stop)
    if t_stop <= t_start:
        raise WaveformError("waveforms do not overlap in time")
    if num_samples is None:
        num_samples = max(len(reference), len(candidate))
    return np.linspace(t_start, t_stop, num_samples)


def rmse(
    reference: Waveform,
    candidate: Waveform,
    num_samples: Optional[int] = None,
) -> float:
    """Root-mean-square error between two waveforms (paper Eq. (6)).

    Both waveforms are resampled on a common uniform grid spanning their time
    overlap before the point-wise error is computed.
    """
    grid = _common_grid(reference, candidate, num_samples)
    error = reference.value_at(grid) - candidate.value_at(grid)
    return float(np.sqrt(np.mean(np.square(error))))


def normalized_rmse(
    reference: Waveform,
    candidate: Waveform,
    vdd: float,
    num_samples: Optional[int] = None,
) -> float:
    """RMSE normalized to Vdd, as the paper reports (1.4 % of Vdd on average)."""
    if vdd <= 0:
        raise WaveformError("vdd must be positive")
    return rmse(reference, candidate, num_samples) / vdd


def peak_error(
    reference: Waveform,
    candidate: Waveform,
    num_samples: Optional[int] = None,
) -> float:
    """Maximum absolute point-wise voltage error over the common window."""
    grid = _common_grid(reference, candidate, num_samples)
    return float(np.max(np.abs(reference.value_at(grid) - candidate.value_at(grid))))


def delay_error(
    reference_delay: float,
    model_delay: float,
    relative: bool = True,
) -> float:
    """Delay estimation error of a model against the reference.

    Returns a fraction when ``relative`` (e.g. 0.04 for 4 %), otherwise the
    absolute error in seconds.
    """
    error = model_delay - reference_delay
    if not relative:
        return error
    if reference_delay == 0:
        raise WaveformError("cannot compute relative error against a zero reference delay")
    return error / abs(reference_delay)
