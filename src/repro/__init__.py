"""repro: reproduction of the MCSM current-source model (DATE 2008).

The package implements, in pure Python:

* a transistor-level reference simulator (:mod:`repro.spice`) over an
  EKV-style device model (:mod:`repro.technology`);
* a small standard-cell library described at transistor level
  (:mod:`repro.cells`);
* characterization flows (:mod:`repro.characterization`) that build
  voltage-dependent current-source models;
* the current-source models themselves (:mod:`repro.csm`): the classic
  single-input-switching CSM, a baseline multi-input-switching CSM without
  internal-node modeling, and the paper's complete MCSM;
* interconnect / crosstalk helpers (:mod:`repro.interconnect`);
* a waveform-propagating static timing layer (:mod:`repro.sta`);
* experiment drivers reproducing every figure of the paper's evaluation
  (:mod:`repro.experiments`).
"""

from .exceptions import (
    AnalysisError,
    CharacterizationError,
    ConvergenceError,
    ModelError,
    NetlistError,
    ReproError,
    TableError,
    TimingError,
    WaveformError,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "NetlistError",
    "AnalysisError",
    "ConvergenceError",
    "CharacterizationError",
    "ModelError",
    "WaveformError",
    "TableError",
    "TimingError",
]
