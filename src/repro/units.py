"""Small helpers for engineering units used throughout the library.

The simulator works internally in SI units (volts, amperes, seconds, farads,
ohms).  These helpers exist so that examples, tests and experiment scripts can
express quantities the way a circuit designer would write them (``10 * PS``,
``50 * FF``) and so that reports can format values back into engineering
notation.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Scale factors (multiply a plain number by these to obtain SI values).
# ---------------------------------------------------------------------------

#: One femtofarad in farads.
FF = 1e-15
#: One picofarad in farads.
PF = 1e-12
#: One picosecond in seconds.
PS = 1e-12
#: One nanosecond in seconds.
NS = 1e-9
#: One microsecond in seconds.
US = 1e-6
#: One millivolt in volts.
MV = 1e-3
#: One microampere in amperes.
UA = 1e-6
#: One milliampere in amperes.
MA = 1e-3
#: One nanometre in metres.
NM = 1e-9
#: One micrometre in metres.
UM = 1e-6
#: One kiloohm in ohms.
KOHM = 1e3

_PREFIXES = [
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
]


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` using an engineering (SI-prefix) notation.

    Parameters
    ----------
    value:
        Quantity in base SI units.
    unit:
        Unit suffix appended after the prefix (e.g. ``"s"``, ``"F"``).
    digits:
        Number of significant digits.

    Examples
    --------
    >>> format_si(3.2e-12, "s")
    '3.2ps'
    >>> format_si(0.0, "V")
    '0V'
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    magnitude = abs(value)
    scale, prefix = _PREFIXES[0]
    for candidate_scale, candidate_prefix in _PREFIXES:
        if magnitude >= candidate_scale:
            scale, prefix = candidate_scale, candidate_prefix
    scaled = value / scale
    return f"{scaled:.{digits}g}{prefix}{unit}"


def from_percent(value: float) -> float:
    """Convert a percentage (e.g. ``4.0``) to a fraction (``0.04``)."""
    return value / 100.0


def to_percent(value: float) -> float:
    """Convert a fraction (e.g. ``0.04``) to a percentage (``4.0``)."""
    return value * 100.0
